#include "gpulbm/gpu_solver.hpp"

#include <algorithm>

namespace gc::gpulbm {

using gpusim::Rect;
using gpusim::TextureId;
using gpusim::Uniforms;
using lbm::Face;
using lbm::FaceBc;

GpuLbmSolver::GpuLbmSolver(gpusim::GpuDevice& dev, const lbm::Lattice& init,
                           Real tau)
    : dev_(dev) {
  params_.dim = init.dim();
  params_.tau = tau;
  for (int f = 0; f < 6; ++f) {
    params_.face_bc[static_cast<std::size_t>(f)] =
        init.face_bc(static_cast<Face>(f));
  }
  params_.inlet_density = init.inlet_density();
  params_.inlet_velocity = init.inlet_velocity();
  GC_CHECK_MSG(init.curved_links().empty(),
               "the GPU path supports flag-based boundaries only");
  GC_CHECK_MSG(!init.has_inlet_profile(),
               "the GPU path requires a uniform inlet velocity");

  const Int3 d = params_.dim;
  for (int b = 0; b < 2; ++b) {
    for (int s = 0; s < NUM_STACKS; ++s) {
      f_[b][s].reserve(static_cast<std::size_t>(d.z));
      for (int z = 0; z < d.z; ++z) {
        f_[b][s].push_back(dev_.create_texture(d.x, d.y));
      }
    }
  }
  flags_.reserve(static_cast<std::size_t>(d.z));
  for (int z = 0; z < d.z; ++z) {
    flags_.push_back(dev_.create_texture(d.x, d.y));
    dev_.upload(flags_.back(), pack_flags_slice(init, z));
  }
  upload_from(init);
}

GpuLbmSolver::~GpuLbmSolver() {
  for (int b = 0; b < 2; ++b) {
    for (int s = 0; s < NUM_STACKS; ++s) {
      for (TextureId id : f_[b][s]) dev_.destroy_texture(id);
    }
  }
  for (TextureId id : flags_) dev_.destroy_texture(id);
  for (TextureId id : moments_) dev_.destroy_texture(id);
  for (TextureId id : border_tex_) {
    if (id >= 0) dev_.destroy_texture(id);
  }
}

void GpuLbmSolver::upload_from(const lbm::Lattice& src) {
  GC_CHECK(src.dim() == params_.dim);
  for (int s = 0; s < NUM_STACKS; ++s) {
    for (int z = 0; z < params_.dim.z; ++z) {
      dev_.upload(f_[cur_][s][static_cast<std::size_t>(z)],
                  pack_slice(src, s, z));
    }
  }
}

int GpuLbmSolver::wrap_slice(int z) const {
  const Int3 d = params_.dim;
  if (z < 0) {
    return params_.face_bc[lbm::FACE_ZMIN] == FaceBc::Periodic ? z + d.z : 0;
  }
  if (z >= d.z) {
    return params_.face_bc[lbm::FACE_ZMAX] == FaceBc::Periodic ? z - d.z
                                                               : d.z - 1;
  }
  return z;
}

std::vector<TextureId> GpuLbmSolver::bound_for_stream(int z) const {
  // Unit layout: stream_f_unit(s, dz) = s*3 + dz+1; flags at 15..17.
  std::vector<TextureId> bound;
  bound.reserve(NUM_STACKS * 3 + 3);
  const int other = 1 - cur_;
  for (int s = 0; s < NUM_STACKS; ++s) {
    for (int dz = -1; dz <= 1; ++dz) {
      bound.push_back(f_[other][s][static_cast<std::size_t>(wrap_slice(z + dz))]);
    }
  }
  for (int dz = -1; dz <= 1; ++dz) {
    bound.push_back(flags_[static_cast<std::size_t>(wrap_slice(z + dz))]);
  }
  return bound;
}

void GpuLbmSolver::collide_pass() {
  const Int3 d = params_.dim;
  const Uniforms no_uniforms;
  const int other = 1 - cur_;
  const Rect full{0, 0, d.x, d.y};

  // Collision: read cur_, write other.
  for (int z = 0; z < d.z; ++z) {
    std::vector<TextureId> bound;
    bound.reserve(NUM_STACKS + 1);
    for (int s = 0; s < NUM_STACKS; ++s) {
      bound.push_back(f_[cur_][s][static_cast<std::size_t>(z)]);
    }
    bound.push_back(flags_[static_cast<std::size_t>(z)]);
    for (int s = 0; s < NUM_STACKS; ++s) {
      CollisionProgram prog(params_, s);
      dev_.render(prog, f_[other][s][static_cast<std::size_t>(z)], full, bound,
                  no_uniforms);
    }
  }
}

void GpuLbmSolver::stream_pass_rects(const std::vector<Rect>& rects) {
  const Int3 d = params_.dim;
  const Uniforms no_uniforms;

  // Streaming: read other (post-collision), write back into cur_.
  for (int z = 0; z < d.z; ++z) {
    const std::vector<TextureId> bound = bound_for_stream(z);
    for (int s = 0; s < NUM_STACKS; ++s) {
      StreamProgram prog(params_, s, z);
      for (const Rect& r : rects) {
        dev_.render(prog, f_[cur_][s][static_cast<std::size_t>(z)], r, bound,
                    no_uniforms);
      }
    }
  }
}

void GpuLbmSolver::stream_pass() {
  const Int3 d = params_.dim;
  stream_pass_rects({Rect{0, 0, d.x, d.y}});
  ++steps_;
}

void GpuLbmSolver::stream_pass_inner(const Rect& inner) {
  if (inner.x1 <= inner.x0 || inner.y1 <= inner.y0) return;
  stream_pass_rects({inner});
}

void GpuLbmSolver::stream_pass_outer(const Rect& inner) {
  const Int3 d = params_.dim;
  std::vector<Rect> rects;
  if (inner.x1 <= inner.x0 || inner.y1 <= inner.y0) {
    rects.push_back(Rect{0, 0, d.x, d.y});  // empty inner: all outer
  } else {
    if (inner.y0 > 0) rects.push_back(Rect{0, 0, d.x, inner.y0});
    if (inner.y1 < d.y) rects.push_back(Rect{0, inner.y1, d.x, d.y});
    if (inner.x0 > 0) rects.push_back(Rect{0, inner.y0, inner.x0, inner.y1});
    if (inner.x1 < d.x) rects.push_back(Rect{inner.x1, inner.y0, d.x, inner.y1});
  }
  if (!rects.empty()) stream_pass_rects(rects);
  ++steps_;
}

void GpuLbmSolver::step() {
  collide_pass();
  stream_pass();
}

std::vector<Real> GpuLbmSolver::read_border_plane(Face face, int coord,
                                                  int t0, int t1, int z0,
                                                  int z1) {
  const int axis = face / 2;
  GC_CHECK_MSG(axis < 2, "read_border_plane supports X/Y faces only");
  GC_CHECK(t1 > t0 && z1 > z0);
  const int bw = t1 - t0;
  const int bh = z1 - z0;
  const int other = 1 - cur_;

  if (border_tex_[0] < 0 || border_tex_dim_.x != bw ||
      border_tex_dim_.y != bh) {
    for (TextureId id : border_tex_) {
      if (id >= 0) dev_.destroy_texture(id);
    }
    border_tex_[0] = dev_.create_texture(bw, bh);
    border_tex_[1] = dev_.create_texture(bw, bh);
    border_tex_dim_ = Int3{bw, bh, 1};
  }

  const Uniforms no_uniforms;
  for (int z = z0; z < z1; ++z) {
    std::vector<TextureId> bound;
    for (int s = 0; s < NUM_STACKS; ++s) {
      bound.push_back(f_[other][s][static_cast<std::size_t>(z)]);
    }
    const Rect row{0, z - z0, bw, z - z0 + 1};
    for (int g = 0; g < 2; ++g) {
      BorderGatherProgram prog(params_, face, g, coord, t0);
      dev_.render(prog, border_tex_[static_cast<std::size_t>(g)], row, bound,
                  no_uniforms);
    }
  }

  const std::vector<float> a = dev_.readback(border_tex_[0]);
  const std::vector<float> b = dev_.readback(border_tex_[1]);
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(bw) * bh * 5);
  for (int row = 0; row < bh; ++row) {
    for (int t = 0; t < bw; ++t) {
      const std::size_t o = (static_cast<std::size_t>(row) * bw + t) * 4;
      for (int k = 0; k < 4; ++k) {
        out.push_back(a[o + static_cast<std::size_t>(k)]);
      }
      out.push_back(b[o]);
    }
  }
  return out;
}

void GpuLbmSolver::write_ghost_plane(Face face, int coord, int t0, int t1,
                                     int z0, int z1,
                                     const std::vector<Real>& values) {
  const int axis = face / 2;
  GC_CHECK_MSG(axis < 2, "write_ghost_plane supports X/Y faces only");
  const int bw = t1 - t0;
  const int bh = z1 - z0;
  GC_CHECK(static_cast<i64>(values.size()) == i64(bw) * bh * 5);
  const int opposite = (face % 2 == 0) ? face + 1 : face - 1;
  const auto dirs = outgoing_directions(static_cast<Face>(opposite));
  const int other = 1 - cur_;

  std::size_t k = 0;
  for (int z = z0; z < z1; ++z) {
    for (int t = t0; t < t1; ++t) {
      const int cx = axis == 0 ? coord : t;
      const int cy = axis == 0 ? t : coord;
      for (int dk = 0; dk < 5; ++dk) {
        const int dir = dirs[static_cast<std::size_t>(dk)];
        gpusim::Texture2D& tex = dev_.texture(
            f_[other][stack_of(dir)][static_cast<std::size_t>(z)]);
        gpusim::RGBA v = tex.fetch(cx, cy);
        v[channel_of(dir)] = values[k++];
        tex.store(cx, cy, v);
      }
    }
  }
  // One write-back transfer for the whole plane payload.
  dev_.bus().download_seconds(static_cast<i64>(values.size()) *
                              static_cast<i64>(sizeof(float)));
}

void GpuLbmSolver::write_ghost_line_z(int x, int y, int dir, int z0, int z1,
                                      const std::vector<Real>& values) {
  GC_CHECK(static_cast<i64>(values.size()) == i64(z1) - z0);
  const int other = 1 - cur_;
  for (int z = z0; z < z1; ++z) {
    gpusim::Texture2D& tex =
        dev_.texture(f_[other][stack_of(dir)][static_cast<std::size_t>(z)]);
    gpusim::RGBA v = tex.fetch(x, y);
    v[channel_of(dir)] = values[static_cast<std::size_t>(z - z0)];
    tex.store(x, y, v);
  }
  dev_.bus().download_seconds(static_cast<i64>(values.size()) *
                              static_cast<i64>(sizeof(float)));
}

void GpuLbmSolver::copy_state_to_host(lbm::Lattice& out) const {
  GC_CHECK(out.dim() == params_.dim);
  const Int3 d = params_.dim;
  for (int s = 0; s < NUM_STACKS; ++s) {
    for (int z = 0; z < d.z; ++z) {
      const gpusim::Texture2D& t =
          dev_.texture(f_[cur_][s][static_cast<std::size_t>(z)]);
      std::vector<float> rgba(t.data(), t.data() + t.num_texels() * 4);
      unpack_slice(out, s, z, rgba);
    }
  }
}

std::vector<Real> GpuLbmSolver::read_border_gathered(Face face) {
  const Int3 d = params_.dim;
  const int axis = face / 2;
  const int bw = axis == 0 ? d.y : d.x;
  const int bh = axis == 2 ? d.y : d.z;

  if (border_tex_[0] < 0 || border_tex_dim_.x != bw ||
      border_tex_dim_.y != bh) {
    for (TextureId id : border_tex_) {
      if (id >= 0) dev_.destroy_texture(id);
    }
    border_tex_[0] = dev_.create_texture(bw, bh);
    border_tex_[1] = dev_.create_texture(bw, bh);
    border_tex_dim_ = Int3{bw, bh, 1};
  }

  auto bind_slice = [&](int z) {
    std::vector<TextureId> bound;
    for (int s = 0; s < NUM_STACKS; ++s) {
      bound.push_back(f_[cur_][s][static_cast<std::size_t>(z)]);
    }
    return bound;
  };
  const Uniforms no_uniforms;

  if (axis == 2) {
    // Z faces: the whole border lives in one slice — one pass per group.
    const int z = (face == lbm::FACE_ZMIN) ? 0 : d.z - 1;
    const Rect full{0, 0, bw, bh};
    for (int g = 0; g < 2; ++g) {
      BorderGatherProgram prog(params_, face, g);
      dev_.render(prog, border_tex_[static_cast<std::size_t>(g)], full,
                  bind_slice(z), no_uniforms);
    }
  } else {
    // X/Y faces: gather row z of the border texture from slice z.
    for (int z = 0; z < d.z; ++z) {
      const Rect row{0, z, bw, z + 1};
      for (int g = 0; g < 2; ++g) {
        BorderGatherProgram prog(params_, face, g);
        dev_.render(prog, border_tex_[static_cast<std::size_t>(g)], row,
                    bind_slice(z), no_uniforms);
      }
    }
  }

  // The optimization's payoff: exactly two read operations.
  const std::vector<float> a = dev_.readback(border_tex_[0]);
  const std::vector<float> b = dev_.readback(border_tex_[1]);

  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(bw) * bh * 5);
  for (int row = 0; row < bh; ++row) {
    for (int t = 0; t < bw; ++t) {
      const std::size_t o = (static_cast<std::size_t>(row) * bw + t) * 4;
      for (int k = 0; k < 4; ++k) out.push_back(a[o + static_cast<std::size_t>(k)]);
      out.push_back(b[o]);
    }
  }
  return out;
}

std::vector<Real> GpuLbmSolver::read_border_unbundled(Face face) {
  const Int3 d = params_.dim;
  const int axis = face / 2;
  const int bw = axis == 0 ? d.y : d.x;
  const int bh = axis == 2 ? d.y : d.z;
  const std::array<int, 5> dirs = outgoing_directions(face);

  std::vector<Real> out(static_cast<std::size_t>(bw) * bh * 5, Real(0));

  auto store = [&](int row, int t, int k, float v) {
    out[(static_cast<std::size_t>(row) * bw + t) * 5 +
        static_cast<std::size_t>(k)] = v;
  };

  if (axis == 2) {
    const int z = (face == lbm::FACE_ZMIN) ? 0 : d.z - 1;
    for (int k = 0; k < 5; ++k) {
      const int i = dirs[static_cast<std::size_t>(k)];
      const auto rgba = dev_.readback_rect(
          f_[cur_][stack_of(i)][static_cast<std::size_t>(z)],
          Rect{0, 0, d.x, d.y});
      for (int row = 0; row < bh; ++row) {
        for (int t = 0; t < bw; ++t) {
          store(row, t, k,
                rgba[(static_cast<std::size_t>(row) * d.x + t) * 4 +
                     static_cast<std::size_t>(channel_of(i))]);
        }
      }
    }
    return out;
  }

  // X/Y faces: one small rect read per direction per slice.
  for (int z = 0; z < d.z; ++z) {
    for (int k = 0; k < 5; ++k) {
      const int i = dirs[static_cast<std::size_t>(k)];
      Rect rect{};
      if (axis == 0) {
        const int x = (face == lbm::FACE_XMIN) ? 0 : d.x - 1;
        rect = Rect{x, 0, x + 1, d.y};
      } else {
        const int y = (face == lbm::FACE_YMIN) ? 0 : d.y - 1;
        rect = Rect{0, y, d.x, y + 1};
      }
      const auto rgba = dev_.readback_rect(
          f_[cur_][stack_of(i)][static_cast<std::size_t>(z)], rect);
      for (int t = 0; t < bw; ++t) {
        store(z, t, k,
              rgba[static_cast<std::size_t>(t) * 4 +
                   static_cast<std::size_t>(channel_of(i))]);
      }
    }
  }
  return out;
}

std::vector<float> GpuLbmSolver::read_moments() {
  const Int3 d = params_.dim;
  if (moments_.empty()) {
    for (int z = 0; z < d.z; ++z) {
      moments_.push_back(dev_.create_texture(d.x, d.y));
    }
  }
  const Uniforms no_uniforms;
  const Rect full{0, 0, d.x, d.y};
  for (int z = 0; z < d.z; ++z) {
    std::vector<TextureId> bound;
    for (int s = 0; s < NUM_STACKS; ++s) {
      bound.push_back(f_[cur_][s][static_cast<std::size_t>(z)]);
    }
    MomentsProgram prog(params_);
    dev_.render(prog, moments_[static_cast<std::size_t>(z)], full, bound,
                no_uniforms);
  }
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(d.volume()) * 4);
  for (int z = 0; z < d.z; ++z) {
    const auto slice = dev_.readback(moments_[static_cast<std::size_t>(z)]);
    out.insert(out.end(), slice.begin(), slice.end());
  }
  return out;
}

}  // namespace gc::gpulbm
