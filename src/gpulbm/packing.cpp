#include "gpulbm/packing.hpp"

#include <cmath>

namespace gc::gpulbm {

std::vector<float> pack_slice(const lbm::Lattice& lat, int stack, int z) {
  GC_CHECK(stack >= 0 && stack < NUM_STACKS);
  const Int3 d = lat.dim();
  GC_CHECK(z >= 0 && z < d.z);
  std::vector<float> rgba(static_cast<std::size_t>(d.x) * d.y * 4, 0.0f);
  for (int ch = 0; ch < 4; ++ch) {
    const int dir = dir_at(stack, ch);
    if (dir < 0) continue;
    const Real* plane = lat.plane_ptr(dir);
    for (int y = 0; y < d.y; ++y) {
      for (int x = 0; x < d.x; ++x) {
        rgba[(static_cast<std::size_t>(y) * d.x + x) * 4 + ch] =
            static_cast<float>(plane[lat.idx(x, y, z)]);
      }
    }
  }
  return rgba;
}

void unpack_slice(lbm::Lattice& lat, int stack, int z,
                  const std::vector<float>& rgba) {
  GC_CHECK(stack >= 0 && stack < NUM_STACKS);
  const Int3 d = lat.dim();
  GC_CHECK(z >= 0 && z < d.z);
  GC_CHECK(rgba.size() == static_cast<std::size_t>(d.x) * d.y * 4);
  for (int ch = 0; ch < 4; ++ch) {
    const int dir = dir_at(stack, ch);
    if (dir < 0) continue;
    Real* plane = lat.plane_ptr(dir);
    for (int y = 0; y < d.y; ++y) {
      for (int x = 0; x < d.x; ++x) {
        plane[lat.idx(x, y, z)] =
            rgba[(static_cast<std::size_t>(y) * d.x + x) * 4 + ch];
      }
    }
  }
}

std::vector<float> pack_flags_slice(const lbm::Lattice& lat, int z) {
  const Int3 d = lat.dim();
  GC_CHECK(z >= 0 && z < d.z);
  std::vector<float> rgba(static_cast<std::size_t>(d.x) * d.y * 4, 0.0f);
  for (int y = 0; y < d.y; ++y) {
    for (int x = 0; x < d.x; ++x) {
      rgba[(static_cast<std::size_t>(y) * d.x + x) * 4] =
          static_cast<float>(static_cast<int>(lat.flag(lat.idx(x, y, z))));
    }
  }
  return rgba;
}

i64 texture_footprint_bytes(Int3 dim) {
  // The paper's single-copy layout: 19 distribution channels (5 RGBA
  // stacks, 80 B/cell), one shared pbuffer/temp stack (16 B/cell), and
  // the density+velocity stack (16 B/cell). Boundary rectangles are
  // negligible. 112 B/cell puts a 128 MB GPU (86 MB usable) at ~92^3,
  // matching Section 2.
  return dim.volume() * 112;
}

int max_cubic_subdomain(i64 usable_bytes) {
  int n = 1;
  while (texture_footprint_bytes(Int3{n + 1, n + 1, n + 1}) <= usable_bytes) {
    ++n;
  }
  return n;
}

}  // namespace gc::gpulbm
