#include "gpulbm/boundary_rects.hpp"

namespace gc::gpulbm {

using lbm::C;
using lbm::CellType;

bool is_boundary_cell(const lbm::Lattice& lat, Int3 p) {
  if (lat.flag(p) == CellType::Solid) return true;
  for (int i = 1; i < lbm::Q; ++i) {
    const Int3 q = p + C[i];
    if (lat.in_bounds(q) && lat.flag(q) == CellType::Solid) return true;
  }
  return false;
}

std::vector<gpusim::Rect> boundary_rectangles(const lbm::Lattice& lat,
                                              int z) {
  const Int3 d = lat.dim();
  GC_CHECK(z >= 0 && z < d.z);

  // Row runs of boundary cells, then merge identical spans vertically.
  struct OpenRect {
    int x0, x1, y0;
  };
  std::vector<gpusim::Rect> done;
  std::vector<OpenRect> open;

  for (int y = 0; y < d.y; ++y) {
    // Runs in this row.
    std::vector<std::pair<int, int>> runs;
    int x = 0;
    while (x < d.x) {
      if (!is_boundary_cell(lat, Int3{x, y, z})) {
        ++x;
        continue;
      }
      const int start = x;
      while (x < d.x && is_boundary_cell(lat, Int3{x, y, z})) ++x;
      runs.emplace_back(start, x);
    }

    // Merge with open rectangles of identical span; close the others.
    std::vector<OpenRect> next_open;
    for (const auto& [x0, x1] : runs) {
      bool extended = false;
      for (const OpenRect& o : open) {
        if (o.x0 == x0 && o.x1 == x1) {
          next_open.push_back(o);
          extended = true;
          break;
        }
      }
      if (!extended) next_open.push_back(OpenRect{x0, x1, y});
    }
    for (const OpenRect& o : open) {
      bool continued = false;
      for (const auto& [x0, x1] : runs) {
        if (o.x0 == x0 && o.x1 == x1) {
          continued = true;
          break;
        }
      }
      if (!continued) {
        done.push_back(gpusim::Rect{o.x0, o.y0, o.x1, y});
      }
    }
    open = std::move(next_open);
  }
  for (const OpenRect& o : open) {
    done.push_back(gpusim::Rect{o.x0, o.y0, o.x1, d.y});
  }
  return done;
}

BoundaryCoverage analyze_boundary_coverage(const lbm::Lattice& lat) {
  BoundaryCoverage cov;
  const Int3 d = lat.dim();
  for (int z = 0; z < d.z; ++z) {
    const auto rects = boundary_rectangles(lat, z);
    cov.rect_count += static_cast<i64>(rects.size());
    for (const gpusim::Rect& r : rects) cov.covered_cells += r.num_fragments();
    for (int y = 0; y < d.y; ++y) {
      for (int x = 0; x < d.x; ++x) {
        if (is_boundary_cell(lat, Int3{x, y, z})) ++cov.boundary_cells;
      }
    }
  }
  cov.rect_bytes = cov.covered_cells * kBoundaryInfoBytesPerCell;
  cov.full_bytes = lat.num_cells() * kBoundaryInfoBytesPerCell;
  return cov;
}

}  // namespace gc::gpulbm
