// The boundary-rectangle optimization of Section 4.2: "since most links
// do not intersect the boundary surface, we do not store boundary
// information for the whole lattice. Instead, we cover the boundary
// regions of each Z slice using multiple small rectangles" — boundary
// link data then only occupies texture memory inside those rectangles,
// and boundary-condition passes render only those rects.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "lbm/lattice.hpp"

namespace gc::gpulbm {

/// True for cells that carry boundary information: solid cells and fluid
/// cells with at least one solid neighbor (their links cross the surface).
bool is_boundary_cell(const lbm::Lattice& lat, Int3 p);

/// Greedy rectangle cover of slice z's boundary cells: maximal row runs,
/// merged vertically when consecutive rows repeat the same span. The
/// rectangles are disjoint and cover exactly the boundary cells... plus
/// nothing else within each run (runs are exact; vertical merging only
/// joins identical spans).
std::vector<gpusim::Rect> boundary_rectangles(const lbm::Lattice& lat, int z);

struct BoundaryCoverage {
  i64 boundary_cells = 0;  ///< cells needing boundary info
  i64 covered_cells = 0;   ///< cells inside the rectangles
  i64 rect_count = 0;
  i64 rect_bytes = 0;  ///< boundary-info bytes stored with rectangles
  i64 full_bytes = 0;  ///< bytes if stored for the whole lattice
  double savings() const {
    return full_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(rect_bytes) / full_bytes;
  }
};

/// Per-link boundary info (flag + intersection fraction for 18 links),
/// as Section 4.2 describes: ~2 values per link.
inline constexpr i64 kBoundaryInfoBytesPerCell = 18 * 2 * 4;

/// Whole-lattice accounting of the rectangle optimization.
BoundaryCoverage analyze_boundary_coverage(const lbm::Lattice& lat);

}  // namespace gc::gpulbm
