// Texture layout of Section 4.2 / Figure 5: each of the 19 velocity
// distributions is a volume with the lattice's resolution; every four
// volumes pack into the RGBA channels of one stack of 2D textures, so the
// 19 distributions occupy 5 stacks (the last has one padding channel).
#pragma once

#include "lbm/lattice.hpp"
#include "util/common.hpp"

namespace gc::gpulbm {

/// Number of RGBA texture stacks holding the 19 distributions.
inline constexpr int NUM_STACKS = 5;

/// Stack index holding direction i.
inline constexpr int stack_of(int i) { return i / 4; }

/// Channel (0=r,1=g,2=b,3=a) of direction i within its stack.
inline constexpr int channel_of(int i) { return i % 4; }

/// Direction stored at (stack, channel), or -1 for the padding channel.
inline constexpr int dir_at(int stack, int channel) {
  const int i = stack * 4 + channel;
  return i < lbm::Q ? i : -1;
}

/// Packs one z-slice of the 4 direction planes of `stack` from a host
/// lattice into an RGBA float array (dim.x * dim.y * 4), ready for upload.
std::vector<float> pack_slice(const lbm::Lattice& lat, int stack, int z);

/// Unpacks an RGBA slice back into the host lattice's current buffer.
void unpack_slice(lbm::Lattice& lat, int stack, int z,
                  const std::vector<float>& rgba);

/// Packs a z-slice of cell flags into the red channel of an RGBA array.
std::vector<float> pack_flags_slice(const lbm::Lattice& lat, int z);

/// Texture-memory footprint (bytes) of a full distribution set for a
/// sub-domain of the given size: NUM_STACKS stacks x 2 (ping-pong) of
/// dim.z slices of dim.x*dim.y RGBA-float texels, plus the flag stack.
/// This is what caps a 128 MB GPU at a 92^3 sub-domain (Section 2).
i64 texture_footprint_bytes(Int3 dim);

/// Largest cubic sub-domain that fits a GPU with `usable_bytes` of
/// texture memory (the paper: 86 MB usable -> 92^3).
int max_cubic_subdomain(i64 usable_bytes);

}  // namespace gc::gpulbm
