// Single-GPU LBM solver (Section 4.2) running on the simulated device:
// distributions live in 5 RGBA texture stacks (x2 for ping-pong), flags in
// one stack; collision and streaming execute as fragment-program render
// passes per slice per stack. Functionally bit-identical to lbm::Solver
// (same single-cell kernels); the device ledger provides the simulated
// FX-5800 timing that calibrates the cluster model.
#pragma once

#include <array>
#include <vector>

#include "gpulbm/programs.hpp"
#include "gpusim/device.hpp"
#include "lbm/lattice.hpp"

namespace gc::gpulbm {

class GpuLbmSolver {
 public:
  /// Uploads the lattice's current state, flags, and boundary setup to the
  /// device (charged as host->GPU traffic).
  GpuLbmSolver(gpusim::GpuDevice& dev, const lbm::Lattice& init, Real tau);
  ~GpuLbmSolver();

  GpuLbmSolver(const GpuLbmSolver&) = delete;
  GpuLbmSolver& operator=(const GpuLbmSolver&) = delete;

  Int3 dim() const { return params_.dim; }
  i64 steps() const { return steps_; }
  gpusim::GpuDevice& device() { return dev_; }

  /// One LBM step: 5 collision passes + 5 streaming passes per slice.
  void step();

  // --- split-phase stepping (the distributed driver's hooks) ---------
  /// Collision passes only: post-collision state lands in the back
  /// buffer, where read_border_plane / write_ghost_* operate.
  void collide_pass();
  /// Streaming passes only: pulls from the back (post-collision) buffer
  /// into the current one. step() == collide_pass(); stream_pass().
  void stream_pass();

  /// Streaming restricted to `inner` (per slice): texels whose pull
  /// sources avoid the ghost margins, renderable while border messages
  /// are in flight. Does not advance the step counter; always pair with
  /// stream_pass_outer(). No-op for an empty rectangle.
  void stream_pass_inner(const gpusim::Rect& inner);

  /// Streams the complement of `inner` as up to four strip rectangles
  /// (the paper's "multiple small rectangles" boundary covering) and
  /// advances the step counter. stream_pass_inner + stream_pass_outer
  /// renders every texel exactly once with the same programs as
  /// stream_pass() — bit-identical, whatever the split.
  void stream_pass_outer(const gpusim::Rect& inner);

  /// Gathers the 5 outgoing post-collision distributions of `face` on the
  /// in-slice plane coordinate `coord` (own border layer, possibly inset
  /// past a ghost layer), tangent range [t0,t1), slices [z0,z1), into two
  /// border textures and reads them back in two operations. X/Y faces
  /// only (the distributed driver decomposes in 2D, as in Table 1).
  /// Layout: [z - z0][t - t0][k], k indexing outgoing_directions(face).
  std::vector<Real> read_border_plane(lbm::Face face, int coord, int t0,
                                      int t1, int z0, int z1);

  /// Writes incoming distributions (outgoing_directions(opposite(face)))
  /// into the ghost plane at in-slice coordinate `coord` of the
  /// post-collision buffer; same layout as read_border_plane. Charged as
  /// a single host->GPU transfer of the payload.
  void write_ghost_plane(lbm::Face face, int coord, int t0, int t1, int z0,
                         int z1, const std::vector<Real>& values);

  /// Writes one distribution along a ghost corner line (x, y, z0..z1) of
  /// the post-collision buffer (the diagonal-neighbor chunk).
  void write_ghost_line_z(int x, int y, int dir, int z0, int z1,
                          const std::vector<Real>& values);

  /// Copies the device state back into a host lattice (debug/validation
  /// path; does not charge bus time — use read_border_* for timed I/O).
  void copy_state_to_host(lbm::Lattice& out) const;

  /// Re-uploads distributions from a host lattice (charged).
  void upload_from(const lbm::Lattice& src);

  /// Border values leaving `face`, ordered [row][texel][dir_k] with
  /// dir_k indexing outgoing_directions(face). Runs the on-GPU gather
  /// passes and exactly two read-backs (the Section 4.3 optimization).
  std::vector<Real> read_border_gathered(lbm::Face face);

  /// The naive alternative: one small read-back per direction per slice
  /// straight from the distribution textures. Same values, many more
  /// read initializations — the ablation of bench_ablation_gather.
  std::vector<Real> read_border_unbundled(lbm::Face face);

  /// Renders the moments pass (density + velocity per cell, one stack)
  /// and reads it back; returns (rho, ux, uy, uz) per cell, slice-major.
  std::vector<float> read_moments();

 private:
  int wrap_slice(int z) const;
  std::vector<gpusim::TextureId> bound_for_stream(int z) const;
  /// Streaming render passes over an explicit rectangle cover of each
  /// slice (shared by the full and the inner/outer partitioned passes).
  void stream_pass_rects(const std::vector<gpusim::Rect>& rects);

  gpusim::GpuDevice& dev_;
  LbmShaderParams params_;
  // f_[b][s][z]: texture of stack s, slice z, buffer b. f_[cur_] is the
  // current state; collision writes the other buffer, streaming writes
  // back into cur_, so cur_ never flips.
  std::array<std::array<std::vector<gpusim::TextureId>, NUM_STACKS>, 2> f_;
  std::vector<gpusim::TextureId> flags_;
  std::vector<gpusim::TextureId> moments_;           // lazy
  std::array<gpusim::TextureId, 2> border_tex_{-1, -1};  // lazy, reused
  Int3 border_tex_dim_{0, 0, 0};
  int cur_ = 0;
  i64 steps_ = 0;
};

}  // namespace gc::gpulbm
