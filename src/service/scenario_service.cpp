#include "service/scenario_service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "tracer/tracer.hpp"

namespace gc::service {

namespace {

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

}  // namespace

core::PartitionSpec ScenarioService::pool_spec(const ServiceConfig& cfg) {
  core::PartitionSpec spec = cfg.partition;
  if (!spec.health_trace) spec.health_trace = cfg.trace;
  if (spec.recovery_dir.empty() && !cfg.partition_faults.empty()) {
    spec.recovery_dir = cfg.cache_dir + "/recovery";
  }
  return spec;
}

ScenarioService::ScenarioService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_dir,
             FlowCacheConfig{cfg_.cache_max_bytes, cfg_.trace}),
      pool_(cfg_.partitions, pool_spec(cfg_)),
      paused_(cfg_.start_paused) {
  GC_CHECK_MSG(cfg_.queue_capacity >= 1, "service queue capacity must be >= 1");
  GC_CHECK_MSG(cfg_.workers >= 1, "the service needs at least one worker");
  GC_CHECK_MSG(cfg_.retry.max_attempts >= 1,
               "RetryPolicy.max_attempts must be >= 1");
  GC_CHECK_MSG(static_cast<int>(cfg_.partition_faults.size()) <=
                   cfg_.partitions,
               "more partition_faults entries than partitions");
  for (std::size_t i = 0; i < cfg_.partition_faults.size(); ++i) {
    if (cfg_.partition_faults[i]) {
      pool_.set_faults(static_cast<int>(i), cfg_.partition_faults[i]);
    }
  }
  wstate_.resize(static_cast<std::size_t>(cfg_.workers));
  watchdog_ = std::thread([this] { watchdog_loop(); });
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ScenarioService::~ScenarioService() { stop(0); }

bool ScenarioService::stop(double deadline_ms) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_begun_) return stop_drained_;
    stop_begun_ = true;
    accepting_ = false;  // refuse new work from this moment on
    paused_ = false;     // a paused service must still drain
  }
  cv_work_.notify_all();
  cv_space_.notify_all();

  // Phase 1: drain. Queued and in-flight scenarios keep running until
  // the deadline; a negative deadline waits them all out.
  bool drained = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (deadline_ms < 0) {
      cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
      drained = true;
    } else {
      const double t_end = clock_.millis() + deadline_ms;
      for (;;) {
        if (queue_.empty() && in_flight_ == 0) {
          drained = true;
          break;
        }
        const double left = t_end - clock_.millis();
        if (left <= 0) break;
        cv_idle_.wait_for(
            lock, std::chrono::duration<double, std::milli>(
                      std::min(left, 50.0)),
            [this] { return queue_.empty() && in_flight_ == 0; });
      }
    }
  }

  // Phase 2: fail the remainder. The aborting_ flag turns every pending
  // wait (partition acquire, retry loop, tracer loop) into a
  // ServiceStopped throw, and aborting the pool wakes runs blocked deep
  // inside a communicator exchange.
  std::deque<Job> orphans;
  if (!drained) {
    aborting_.store(true, std::memory_order_release);
    {
      std::unique_lock<std::mutex> lock(mu_);
      orphans.swap(queue_);
      set_queue_gauge(0);
    }
    pool_.abort_all();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::unique_lock<std::mutex> lock(mu_);
    watchdog_stop_ = true;
  }
  cv_watchdog_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  for (Job& job : orphans) {
    job.promise.set_exception(std::make_exception_ptr(ServiceStopped(
        "scenario service stopped before this request ran")));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_drained_ = drained;
  }
  return drained;
}

void ScenarioService::set_queue_gauge(int depth) {
  if (cfg_.trace) cfg_.trace->set_gauge("service.queue_depth", 0, depth);
}

void ScenarioService::set_worker_slot(int worker, int slot, u64 lease) {
  std::unique_lock<std::mutex> lock(mu_);
  WorkerState& ws = wstate_[static_cast<std::size_t>(worker)];
  ws.slot = slot;
  ws.lease = lease;
  ws.killed = false;
}

bool ScenarioService::expired(double deadline_at) const {
  return clock_.millis() > deadline_at;
}

std::future<ScenarioResult> ScenarioService::submit(ScenarioRequest req) {
  Job job;
  job.deadline_at = req.deadline_ms > 0 ? clock_.millis() + req.deadline_ms
                                        : kNoDeadline;
  job.req = std::move(req);
  std::future<ScenarioResult> fut = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [this] {
      return !accepting_ ||
             static_cast<int>(queue_.size()) < cfg_.queue_capacity;
    });
    if (!accepting_) {
      throw ServiceStopped("submit() on a stopped scenario service");
    }
    queue_.push_back(std::move(job));
    if (cfg_.trace) cfg_.trace->add_counter("service.requests", 0, 1);
    set_queue_gauge(static_cast<int>(queue_.size()));
  }
  cv_work_.notify_one();
  return fut;
}

bool ScenarioService::try_submit(ScenarioRequest req,
                                 std::future<ScenarioResult>* out) {
  Job job;
  job.deadline_at = req.deadline_ms > 0 ? clock_.millis() + req.deadline_ms
                                        : kNoDeadline;
  job.req = std::move(req);
  std::future<ScenarioResult> fut = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_ ||
        static_cast<int>(queue_.size()) >= cfg_.queue_capacity) {
      return false;
    }
    queue_.push_back(std::move(job));
    if (cfg_.trace) cfg_.trace->add_counter("service.requests", 0, 1);
    set_queue_gauge(static_cast<int>(queue_.size()));
  }
  cv_work_.notify_one();
  if (out) *out = std::move(fut);
  return true;
}

void ScenarioService::start() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void ScenarioService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int ScenarioService::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void ScenarioService::worker_loop(int worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ += 1;
      WorkerState& ws = wstate_[static_cast<std::size_t>(worker)];
      ws = WorkerState{};
      ws.deadline_at = job.deadline_at;
      set_queue_gauge(static_cast<int>(queue_.size()));
    }
    cv_space_.notify_one();
    try {
      job.promise.set_value(run_scenario(job.req, worker, job.deadline_at));
    } catch (const DeadlineExceeded&) {
      if (cfg_.trace) {
        cfg_.trace->add_counter("service.deadline_expired", 0, 1);
      }
      job.promise.set_exception(std::current_exception());
    } catch (const std::exception&) {
      job.promise.set_exception(std::current_exception());
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      WorkerState& ws = wstate_[static_cast<std::size_t>(worker)];
      ws = WorkerState{};
      ws.deadline_at = kNoDeadline;
      in_flight_ -= 1;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ScenarioService::watchdog_loop() {
  for (;;) {
    std::vector<std::promise<ScenarioResult>> late;
    std::vector<std::pair<int, u64>> kills;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_watchdog_.wait_for(lock, std::chrono::milliseconds(10),
                            [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
      const double now = clock_.millis();
      // Queued requests past their deadline fail right here — no point
      // occupying a worker (or a partition) for a result nobody can use.
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (now > it->deadline_at) {
          late.push_back(std::move(it->promise));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (!late.empty()) {
        set_queue_gauge(static_cast<int>(queue_.size()));
        if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
      }
      // In-flight runs past their deadline get their partition lease
      // aborted (once). The worker translates the abort back into
      // DeadlineExceeded; phases that hold no lease poll expired()
      // themselves.
      for (WorkerState& ws : wstate_) {
        if (ws.slot >= 0 && !ws.killed && now > ws.deadline_at) {
          ws.killed = true;
          kills.emplace_back(ws.slot, ws.lease);
        }
      }
    }
    if (!late.empty()) cv_space_.notify_all();
    for (std::promise<ScenarioResult>& p : late) {
      if (cfg_.trace) {
        cfg_.trace->add_counter("service.deadline_expired", 0, 1);
      }
      p.set_exception(std::make_exception_ptr(
          DeadlineExceeded("request deadline expired in the queue")));
    }
    // Aborts run outside mu_: abort_lease takes the pool lock, and the
    // lease id keeps a stale decision from killing the slot's next
    // tenant.
    for (const auto& [slot, lease] : kills) pool_.abort_lease(slot, lease);
  }
}

ScenarioResult ScenarioService::run_scenario(const ScenarioRequest& req,
                                             int worker, double deadline_at) {
  obs::ScopedSpan span(cfg_.trace, "service.scenario", worker, "service");
  ScenarioResult res;
  if (aborting()) throw ServiceStopped("service stopped");
  if (expired(deadline_at)) {
    throw DeadlineExceeded("request deadline expired before the flow phase");
  }

  lbm::Lattice lat = build_scenario_lattice(req);
  const FlowKey key = scenario_flow_key(req, lat);

  Timer flow_timer;
  FlowCache::Entry entry = cache_.get_or_compute(key, [&]() -> lbm::Lattice {
    // Cache miss: lease a cluster partition and spin the flow up. The
    // lease is acquired only inside the compute closure, so cache hits
    // never occupy a partition and hit latency is independent of
    // cluster load.
    obs::ScopedSpan flow_span(cfg_.trace, "service.flow", worker, "service");
    return compute_flow(req, worker, deadline_at, &res.flow_stats,
                        &res.partition);
  });
  res.flow_ms = flow_timer.millis();
  res.cache_hit = entry.hit;
  if (cfg_.trace) {
    cfg_.trace->add_counter(
        entry.hit ? "service.cache_hits" : "service.cache_misses", 0, 1);
  }

  Timer tracer_timer;
  {
    obs::ScopedSpan tracer_span(cfg_.trace, "service.tracer", worker,
                                "service");
    tracer::TracerParams tp;
    tp.seed = req.tracer_seed;
    tracer::TracerCloud cloud(tp);
    for (const Release& r : req.releases) {
      cloud.release(r.site, r.count);
      res.particles_released += r.count;
    }
    for (int s = 0; s < req.tracer_steps; ++s) {
      // The tracer phase holds no lease the watchdog could abort, so it
      // polls its own cancellation — cheaply, every few steps.
      if ((s & 7) == 0) {
        if (aborting()) throw ServiceStopped("service stopped mid-tracer");
        if (expired(deadline_at)) {
          throw DeadlineExceeded("request deadline expired mid-tracer");
        }
      }
      cloud.step(entry.flow);
    }
    res.particles_escaped = cloud.num_escaped();
    res.particles_alive = cloud.num_particles();
    if (req.deposit_concentration) {
      cloud.deposit(entry.flow, res.concentration);
    }
  }
  res.tracer_ms = tracer_timer.millis();
  return res;
}

lbm::Lattice ScenarioService::compute_flow(const ScenarioRequest& req,
                                           int worker, double deadline_at,
                                           obs::RunStats* stats,
                                           int* partition_out) {
  const int attempts = std::max(1, cfg_.retry.max_attempts);
  int exclude = -1;  // retries prefer a different partition
  for (int attempt = 1;; ++attempt) {
    if (aborting()) {
      throw ServiceStopped("service stopped before the flow could run");
    }
    if (expired(deadline_at)) {
      throw DeadlineExceeded("request deadline expired before the flow ran");
    }
    // A fresh cold-start lattice per attempt: a failed run leaves its
    // state mid-rollback, and bit-exactness demands every attempt start
    // from the same bytes.
    lbm::Lattice lat = build_scenario_lattice(req);
    std::optional<core::PartitionPool::Lease> lease;
    try {
      lease = pool_.acquire_until(exclude, [this, deadline_at] {
        // Runs under the pool lock: atomics and the steady clock only.
        return aborting() || expired(deadline_at);
      });
    } catch (const core::LeaseAbortedError&) {
      throw ServiceStopped("service stopped while waiting for a partition");
    }
    if (!lease) {
      if (aborting()) {
        throw ServiceStopped("service stopped while waiting for a partition");
      }
      throw DeadlineExceeded(
          "request deadline expired waiting for a partition");
    }
    const int slot = lease->partition();
    set_worker_slot(worker, slot, lease->lease_id());
    try {
      const obs::RunStats st = lease->run(lat, req.spin_up_steps, req.params);
      set_worker_slot(worker, -1, 0);
      lease.reset();  // release before reporting: keep the slot turning over
      pool_.report_success(slot);
      *stats = st;
      *partition_out = slot;
      return lat;
    } catch (const core::LeaseAbortedError&) {
      set_worker_slot(worker, -1, 0);
      lease.reset();
      // Externally cancelled, not a partition failure: no health report,
      // no retry. Translate to the cause of the cancellation.
      if (aborting()) throw ServiceStopped("service stopped mid-flow");
      throw DeadlineExceeded("deadline watchdog aborted the flow run");
    } catch (const Error& e) {
      set_worker_slot(worker, -1, 0);
      lease.reset();
      pool_.report_failure(slot);
      if (attempt >= attempts) {
        throw ScenarioFailed("flow compute failed after " +
                             std::to_string(attempt) +
                             " attempt(s); last error: " + e.what());
      }
      if (cfg_.trace) cfg_.trace->add_counter("service.retries", 0, 1);
      exclude = slot;
      if (cfg_.retry.backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            cfg_.retry.backoff_ms * attempt));
      }
    }
  }
}

}  // namespace gc::service
