#include "service/scenario_service.hpp"

#include <utility>

#include "tracer/tracer.hpp"
#include "util/timer.hpp"

namespace gc::service {

ScenarioService::ScenarioService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_dir),
      pool_(cfg_.partitions, cfg_.partition),
      paused_(cfg_.start_paused) {
  GC_CHECK_MSG(cfg_.queue_capacity >= 1, "service queue capacity must be >= 1");
  GC_CHECK_MSG(cfg_.workers >= 1, "the service needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ScenarioService::~ScenarioService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    paused_ = false;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers are gone; whatever is still queued can never run.
  for (Job& job : queue_) {
    job.promise.set_exception(std::make_exception_ptr(
        Error("scenario service shut down before this request ran")));
  }
  queue_.clear();
}

void ScenarioService::set_queue_gauge(int depth) {
  if (cfg_.trace) cfg_.trace->set_gauge("service.queue_depth", 0, depth);
}

std::future<ScenarioResult> ScenarioService::submit(ScenarioRequest req) {
  Job job;
  job.req = std::move(req);
  std::future<ScenarioResult> fut = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [this] {
      return stop_ || static_cast<int>(queue_.size()) < cfg_.queue_capacity;
    });
    GC_CHECK_MSG(!stop_, "submit() on a stopping scenario service");
    queue_.push_back(std::move(job));
    if (cfg_.trace) cfg_.trace->add_counter("service.requests", 0, 1);
    set_queue_gauge(static_cast<int>(queue_.size()));
  }
  cv_work_.notify_one();
  return fut;
}

bool ScenarioService::try_submit(ScenarioRequest req,
                                 std::future<ScenarioResult>* out) {
  Job job;
  job.req = std::move(req);
  std::future<ScenarioResult> fut = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ || static_cast<int>(queue_.size()) >= cfg_.queue_capacity) {
      return false;
    }
    queue_.push_back(std::move(job));
    if (cfg_.trace) cfg_.trace->add_counter("service.requests", 0, 1);
    set_queue_gauge(static_cast<int>(queue_.size()));
  }
  cv_work_.notify_one();
  if (out) *out = std::move(fut);
  return true;
}

void ScenarioService::start() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void ScenarioService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int ScenarioService::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void ScenarioService::worker_loop(int worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ += 1;
      set_queue_gauge(static_cast<int>(queue_.size()));
    }
    cv_space_.notify_one();
    try {
      job.promise.set_value(run_scenario(job.req, worker));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_flight_ -= 1;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ScenarioResult ScenarioService::run_scenario(const ScenarioRequest& req,
                                             int worker) {
  obs::ScopedSpan span(cfg_.trace, "service.scenario", worker, "service");
  ScenarioResult res;

  lbm::Lattice lat = build_scenario_lattice(req);
  const FlowKey key = scenario_flow_key(req, lat);

  Timer flow_timer;
  FlowCache::Entry entry = cache_.get_or_compute(key, [&]() -> lbm::Lattice {
    // Cache miss: lease a cluster partition and spin the flow up. The
    // lease is acquired only inside the compute closure, so cache hits
    // never occupy a partition and hit latency is independent of
    // cluster load.
    obs::ScopedSpan flow_span(cfg_.trace, "service.flow", worker, "service");
    core::PartitionPool::Lease lease = pool_.acquire();
    res.partition = lease.partition();
    res.flow_stats = lease.run(lat, req.spin_up_steps, req.params);
    return std::move(lat);
  });
  res.flow_ms = flow_timer.millis();
  res.cache_hit = entry.hit;
  if (cfg_.trace) {
    cfg_.trace->add_counter(
        entry.hit ? "service.cache_hits" : "service.cache_misses", 0, 1);
  }

  Timer tracer_timer;
  {
    obs::ScopedSpan tracer_span(cfg_.trace, "service.tracer", worker,
                                "service");
    tracer::TracerParams tp;
    tp.seed = req.tracer_seed;
    tracer::TracerCloud cloud(tp);
    for (const Release& r : req.releases) {
      cloud.release(r.site, r.count);
      res.particles_released += r.count;
    }
    for (int s = 0; s < req.tracer_steps; ++s) cloud.step(entry.flow);
    res.particles_escaped = cloud.num_escaped();
    res.particles_alive = cloud.num_particles();
    if (req.deposit_concentration) {
      cloud.deposit(entry.flow, res.concentration);
    }
  }
  res.tracer_ms = tracer_timer.millis();
  return res;
}

}  // namespace gc::service
