// The request/result vocabulary of the scenario service: one
// ScenarioRequest describes a complete urban-dispersion query — which
// city variant, at what resolution, under what wind, with tracers
// released where — and one ScenarioResult carries everything the paper's
// Section 5 workflow reads back (flow stats, tracer fate, per-cell
// concentration). Requests deliberately reference *parameters*, not
// lattices: two requests that build the same lattice share a FlowKey and
// therefore a cached steady flow.
#pragma once

#include <vector>

#include "city/city_model.hpp"
#include "city/voxelize.hpp"
#include "city/wind.hpp"
#include "lbm/run_params.hpp"
#include "obs/trace.hpp"
#include "service/flow_cache.hpp"

namespace gc::service {

/// One tracer release: `count` particles injected at a lattice site
/// before the dispersion steps run.
struct Release {
  Int3 site{};
  int count = 0;
};

/// A complete scenario query. Everything above `releases` determines the
/// steady flow (and therefore the cache key); the release list, tracer
/// seed and step count only affect the cheap dispersion phase.
struct ScenarioRequest {
  // --- flow-determining fields (feed scenario_flow_key) ---
  city::CityParams city{};           ///< city variant (seed, extents, ...)
  city::VoxelizeParams voxel{};      ///< rasterization onto the lattice
  Int3 dim{96, 64, 24};              ///< lattice resolution
  city::WindScenario wind{};         ///< inflow velocity + ABL profile
  lbm::RunParams params{};           ///< tau / collision / storage mode
  int spin_up_steps = 200;           ///< LBM steps to steady state

  // --- dispersion-only fields ---
  std::vector<Release> releases;     ///< tracer sources
  int tracer_steps = 100;            ///< Lowe–Succi hops after release
  u64 tracer_seed = 7;               ///< tracer RNG seed (determinism)
  bool deposit_concentration = true; ///< fill ScenarioResult::concentration

  // --- service-level fields (not part of the flow key) ---
  /// Wall-clock budget from submit() to completion, in ms; past it the
  /// request fails with service::DeadlineExceeded — in the queue, while
  /// waiting for a partition, or mid-run (the service watchdog aborts
  /// the lease's communicator world). 0 = no deadline.
  double deadline_ms = 0;
};

/// What a scenario hands back.
struct ScenarioResult {
  bool cache_hit = false;       ///< flow restored from the cache
  int partition = -1;           ///< partition that ran the flow (-1 = none)
  obs::RunStats flow_stats;     ///< spin-up stats (zero steps on a hit)
  double flow_ms = 0;           ///< wall time of the flow phase (incl. cache)
  double tracer_ms = 0;         ///< wall time of the dispersion phase
  i64 particles_released = 0;
  i64 particles_escaped = 0;    ///< left the domain through open faces
  i64 particles_alive = 0;
  /// Per-cell particle density (dim.x*dim.y*dim.z floats, x fastest);
  /// empty when deposit_concentration was off.
  std::vector<float> concentration;
};

/// Builds the cold-start lattice for a request: wind boundaries, uniform
/// (or profiled) equilibrium at the wind velocity, city voxelized to
/// Solid cells. This is the lattice whose geometry the cache key hashes.
lbm::Lattice build_scenario_lattice(const ScenarioRequest& req);

/// The flow-cache key of a request, given its built lattice (pass the
/// build_scenario_lattice result to avoid rasterizing twice).
FlowKey scenario_flow_key(const ScenarioRequest& req,
                          const lbm::Lattice& lat);

}  // namespace gc::service
