// The steady-state flow-field cache at the heart of the scenario service.
//
// The urban-dispersion workload is many-query: release points × wind
// directions × city variants. The expensive part of a query is spinning
// the LBM flow up to steady state; the cheap part is the Lowe–Succi
// tracer walk, which only *reads* the frozen distributions. Queries that
// share (geometry, wind, resolution, run params) therefore share a flow:
// the first request runs the LBM and commits the steady field as a
// checkpoint-v2 file plus a manifest, and every later request restores
// the frozen flow and runs tracers only.
//
// Entry format: one storage-agnostic lattice checkpoint (io/checkpoint,
// CRC-enveloped, atomic-rename commit) plus a ClusterManifest written
// LAST — manifest presence implies a complete entry, exactly the commit
// protocol the recovery layer uses. A torn or corrupted entry fails its
// CRC on load and is silently invalidated and recomputed.
//
// Concurrency: get_or_compute is single-flight per key. Concurrent
// requests for the same key block until the one compute commits, then
// load the committed entry — the LBM runs once no matter how many
// identical requests race in.
//
// Robustness: the directory is byte-bounded (FlowCacheConfig::max_bytes)
// with LRU eviction that never touches an entry being computed or
// restored right now and removes the manifest first (a crash mid-evict
// leaves a checkpoint without a manifest — an entry that does not
// exist). Construction scavenges the crash debris of earlier processes:
// orphaned *.tmp files from torn atomic writes and half-committed
// entries (a checkpoint whose process died before the manifest write,
// or a manifest whose checkpoint was half-evicted).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "lbm/lattice.hpp"
#include "lbm/run_params.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace gc::service {

/// Everything that determines a steady flow field. Two requests with
/// equal keys may share a cached flow; any differing field forces a
/// separate entry. The geometry hash covers flags, face BCs, inlet
/// state and curved links of the built lattice (see geometry_hash);
/// wind velocity and boundary-layer exponent are carried explicitly so
/// the key is self-describing.
struct FlowKey {
  u64 geometry_hash = 0;
  Int3 dim{};                       ///< resolution
  Vec3 wind{};                      ///< inflow velocity (lattice units)
  Real profile_exponent = Real(0);  ///< atmospheric boundary-layer power
  lbm::RunParams params;            ///< tau / collision / storage mode
  int spin_up_steps = 0;            ///< steps defining "steady state"
};

/// Configuration digest of a lattice: dims, flags, face BCs, inlet
/// density/velocity and curved links — NOT the distribution values. Two
/// lattices with equal hashes impose identical geometry on a flow.
/// (Inlet *profiles* are callbacks and cannot be hashed; key them via
/// FlowKey::profile_exponent instead.)
u64 geometry_hash(const lbm::Lattice& lat);

/// Deterministic file stem for a key ("flow_<16 hex digits>"); every
/// field feeds the digest, so distinct keys get distinct entries.
std::string flow_key_stem(const FlowKey& key);

struct FlowCacheConfig {
  /// Byte budget for the entry files in the cache directory; LRU entries
  /// are evicted after each commit to stay under it. 0 = unbounded.
  i64 max_bytes = 0;
  /// service.cache_evictions counter / service.cache_bytes gauge land
  /// here. Not owned; may be null.
  obs::TraceRecorder* trace = nullptr;
};

class FlowCache {
 public:
  /// Entries live in `dir` (created if missing) as <stem>.gclb +
  /// <stem>.gcmf pairs; a cache directory survives process restarts.
  /// Construction scavenges crash debris (see Stats::scavenged) and
  /// seeds the LRU order from file modification times.
  explicit FlowCache(std::string dir, FlowCacheConfig cfg = {});

  struct Stats {
    i64 hits = 0;       ///< requests served from a committed entry
    i64 misses = 0;     ///< requests that had to compute
    i64 computes = 0;   ///< LBM spin-ups actually executed (== misses)
    i64 evictions = 0;  ///< committed entries removed for the byte budget
    i64 scavenged = 0;  ///< crash-debris files removed at construction
  };

  struct Entry {
    lbm::Lattice flow;    ///< steady flow, in the storage mode it ran in
    bool hit = false;     ///< true when served without computing
    i64 steady_step = 0;  ///< spin-up steps behind the field
  };

  /// Returns the steady flow for `key`, invoking `compute` exactly once
  /// across all concurrent callers on the first request (or after an
  /// entry was invalidated by corruption or evicted for space). `compute`
  /// must return the steady lattice for the key; its result is committed
  /// before any waiting caller is released. Exceptions from `compute`
  /// propagate to the computing caller; waiting callers then retry (one
  /// of them becomes the new computer).
  Entry get_or_compute(const FlowKey& key,
                       const std::function<lbm::Lattice()>& compute)
      GC_EXCLUDES(mu_);

  /// True when a committed entry for `key` is on disk (no validation
  /// beyond manifest presence — load still CRC-checks).
  bool contains(const FlowKey& key) const GC_EXCLUDES(mu_);

  Stats stats() const GC_EXCLUDES(mu_);
  /// Bytes of committed entry files on disk right now (always <=
  /// max_bytes after a commit when a budget is configured).
  i64 bytes() const GC_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }
  const FlowCacheConfig& config() const { return cfg_; }
  std::string checkpoint_path(const FlowKey& key) const;
  std::string manifest_path(const FlowKey& key) const;

 private:
  /// On-disk bookkeeping for one committed entry.
  struct DiskEntry {
    i64 bytes = 0;
    u64 last_use = 0;  ///< monotonic LRU stamp (higher = more recent)
  };

  /// Removes crash debris and indexes committed entries. Ctor only.
  void scavenge_and_index() GC_REQUIRES(mu_);
  /// Records a commit / refreshes LRU. Caller holds mu_.
  void note_entry_locked(const std::string& stem, i64 bytes)
      GC_REQUIRES(mu_);
  /// Forgets a removed/corrupted entry. Caller holds mu_.
  void drop_entry_locked(const std::string& stem) GC_REQUIRES(mu_);
  /// Evicts LRU entries (manifest first, then checkpoint) until the
  /// budget holds, skipping in-flight and restoring stems. Caller
  /// holds mu_.
  void enforce_budget_locked() GC_REQUIRES(mu_);
  void publish_bytes_locked() GC_REQUIRES(mu_);

  std::string dir_;
  FlowCacheConfig cfg_;
  /// GC_ALLOWS_BLOCKING: the index must mirror the directory atomically
  /// — scavenging, eviction and commit bookkeeping do filesystem work
  /// under mu_ by design (innermost lock, bounded IO, no cv waits held).
  mutable std::mutex mu_ GC_ALLOWS_BLOCKING;
  std::condition_variable cv_;
  /// Stems being computed right now.
  std::set<std::string> in_flight_ GC_GUARDED_BY(mu_);
  /// Stems being loaded right now.
  std::set<std::string> restoring_ GC_GUARDED_BY(mu_);
  /// Committed, on disk.
  std::map<std::string, DiskEntry> entries_ GC_GUARDED_BY(mu_);
  u64 use_seq_ GC_GUARDED_BY(mu_) = 0;
  i64 total_bytes_ GC_GUARDED_BY(mu_) = 0;
  Stats stats_ GC_GUARDED_BY(mu_);
};

}  // namespace gc::service
