// The typed failure vocabulary of the scenario service. Every way a
// submitted scenario can fail surfaces through its future as one of
// these — never a hang, never an untyped catch-all — so callers can
// route on the class: retry later (ScenarioFailed), drop the request
// (DeadlineExceeded), or shut down cleanly (ServiceStopped).
//
//   gc::Error
//   └── service::ServiceError
//       ├── ServiceStopped     the service stopped before/while the
//       │                      request ran (stop(deadline) drained out)
//       ├── DeadlineExceeded   the request's deadline_ms elapsed, in the
//       │                      queue or mid-run (watchdog abort)
//       └── ScenarioFailed     every retry attempt died of a real fault
//                              (CommTimeout / RankCrashError /
//                              DivergenceError past the rollback budget)
#pragma once

#include "util/common.hpp"

namespace gc::service {

/// Base class of all scenario-service failures.
class ServiceError : public Error {
 public:
  using Error::Error;
};

/// The service stopped (stop(deadline) / destruction) before this
/// request could run, or aborted it mid-flight past the drain deadline.
class ServiceStopped : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// The request's deadline elapsed — while queued, waiting for a
/// partition, or mid-run (the watchdog aborted the lease's world).
class DeadlineExceeded : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Every retry attempt failed on a real fault; the last cause is in the
/// message. The partitions involved have been reported unhealthy.
class ScenarioFailed : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

}  // namespace gc::service
