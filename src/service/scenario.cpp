#include "service/scenario.hpp"

namespace gc::service {

lbm::Lattice build_scenario_lattice(const ScenarioRequest& req) {
  lbm::Lattice lat(req.dim, req.params.storage);
  city::apply_wind_boundaries(lat, req.wind);
  lat.init_equilibrium(Real(1), req.wind.velocity);
  const city::CityModel model(req.city);
  city::voxelize(model, lat, req.voxel);
  return lat;
}

FlowKey scenario_flow_key(const ScenarioRequest& req,
                          const lbm::Lattice& lat) {
  FlowKey key;
  key.geometry_hash = geometry_hash(lat);
  key.dim = req.dim;
  key.wind = req.wind.velocity;
  key.profile_exponent = req.wind.profile_exponent;
  key.params = req.params;
  key.spin_up_steps = req.spin_up_steps;
  return key;
}

}  // namespace gc::service
