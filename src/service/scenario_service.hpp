// The ensemble scenario service: the paper's Section 6 vision of the
// cluster as a *dispersion calculation appliance* — emergency-response
// queries ("release at X under wind W, where does the plume go?") arrive
// as requests, not as hand-written simulation drivers. The service owns
// a PartitionPool (the cluster), a bounded request queue, a small worker
// pool, and the steady-state FlowCache. Each worker takes one request,
// resolves its flow field (cache hit: restore the frozen checkpoint;
// miss: lease a cluster partition and spin the LBM up), then runs the
// Lowe–Succi tracer phase against the frozen flow and fulfils the
// request's future.
//
// Determinism: tracers are seeded and the flow they read is frozen, so a
// cached scenario reproduces a cold scenario bit-exactly — the cache is
// purely a performance layer (tests assert this). Fault recovery is
// bit-exact too (PR 3), so even a scenario that crashed, rolled back and
// retried on a different partition returns the same bytes.
//
// Resilience: per-partition FaultSpecs (ServiceConfig::partition_faults)
// run cold flows under the recovery driver; a failed compute is retried
// on a *different* partition (RetryPolicy), failing partitions are
// quarantined with timed probation (see core::PartitionPool), requests
// carry deadlines enforced by a watchdog thread that aborts a stuck
// lease's communicator world, and stop(deadline) drains in-flight work
// up to a deadline then fails the remainder with ServiceStopped. Every
// failure is typed (service/errors.hpp); every cv wait is bounded or
// predicated (GCL006).
//
// Observability: every scenario runs under a service.scenario span (tid
// = worker index); cache traffic lands on the service.cache_hits /
// service.cache_misses counters, queue pressure on the
// service.queue_depth gauge, and the resilience machinery on
// service.retries / service.quarantined / service.deadline_expired /
// service.cache_evictions and the service.degraded / service.cache_bytes
// gauges — all names in the span canon.
#pragma once

#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/partition.hpp"
#include "service/errors.hpp"
#include "service/flow_cache.hpp"
#include "service/scenario.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace gc::service {

/// How a failed cold-flow compute is re-run. Attempt 1 is the original
/// run; each retry prefers a different partition than the one that just
/// failed and reports partition health either way.
struct RetryPolicy {
  int max_attempts = 3;    ///< total attempts (1 = no retries)
  double backoff_ms = 2;   ///< sleep between attempts, times attempt index
};

struct ServiceConfig {
  /// Flow-cache directory; survives service restarts (a warm directory
  /// makes every first request a hit).
  std::string cache_dir = "flow_cache";
  /// Byte budget for the flow-cache directory (LRU eviction after each
  /// commit; crash debris scavenged at startup). 0 = unbounded.
  i64 cache_max_bytes = 0;
  /// Bounded queue: submit() blocks and try_submit() refuses once this
  /// many requests are waiting (back-pressure instead of OOM).
  int queue_capacity = 16;
  /// Worker threads draining the queue. Independent scenarios batch
  /// across the cluster: each cache-missing worker leases its own
  /// partition, so up to min(workers, partitions) flows run at once.
  int workers = 2;
  /// Cluster partitions in the pool.
  int partitions = 2;
  /// Shape of every partition (node grid, backend, overlap, trace) plus
  /// the resilience knobs (reliability, recovery, quarantine thresholds).
  /// recovery_dir defaults to "<cache_dir>/recovery" when left empty and
  /// any partition_faults are set.
  core::PartitionSpec partition{};
  /// Per-partition fault injection: entry i (may be null) is attached to
  /// pool slot i. Not owned; must outlive the service. Host backend only.
  std::vector<netsim::FaultSpec*> partition_faults;
  /// Retry policy for failed cold-flow computes.
  RetryPolicy retry;
  /// Service-level spans/counters/gauges land here. Not owned; may be
  /// null. (Partition-internal tracing is wired via `partition.trace`.)
  obs::TraceRecorder* trace = nullptr;
  /// Construct with the workers parked; start() releases them. Lets
  /// tests fill the bounded queue deterministically.
  bool start_paused = false;
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig cfg);
  /// Equivalent to stop(0): refuses new work, aborts anything queued or
  /// in flight with ServiceStopped, joins the workers.
  ~ScenarioService();

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Enqueues a request; blocks while the queue is full. The returned
  /// future yields the result or rethrows the scenario's typed failure
  /// (service/errors.hpp). Throws ServiceStopped once stop() has begun.
  std::future<ScenarioResult> submit(ScenarioRequest req) GC_EXCLUDES(mu_);

  /// Non-blocking submit: false (and no future) when the queue is full
  /// or the service is stopping.
  bool try_submit(ScenarioRequest req, std::future<ScenarioResult>* out)
      GC_EXCLUDES(mu_);

  /// Releases workers parked by start_paused (no-op otherwise).
  void start() GC_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no scenario is in flight.
  void drain() GC_EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting work immediately, drains queued
  /// and in-flight scenarios for up to `deadline_ms`, then fails the
  /// remainder with ServiceStopped (queued requests via their futures;
  /// in-flight runs by aborting their partition leases). deadline_ms < 0
  /// waits for a full drain; 0 fails everything not already done.
  /// Returns true when everything drained inside the deadline.
  /// Idempotent; called by the destructor with deadline 0.
  bool stop(double deadline_ms = -1) GC_EXCLUDES(mu_);

  /// Requests waiting in the queue right now (excludes in-flight).
  int queue_depth() const GC_EXCLUDES(mu_);

  FlowCache& cache() { return cache_; }
  core::PartitionPool& partitions() { return pool_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  struct Job {
    ScenarioRequest req;
    std::promise<ScenarioResult> promise;
    double deadline_at = 0;  ///< absolute ms on clock_; +inf = none
  };

  /// Watchdog's view of one worker (guarded by mu_).
  struct WorkerState {
    double deadline_at = 0;  ///< +inf when the job has no deadline
    int slot = -1;           ///< leased partition, -1 = none
    u64 lease = 0;           ///< lease_id of the held lease (0 = none)
    bool killed = false;     ///< watchdog already aborted this lease
  };

  void worker_loop(int worker) GC_EXCLUDES(mu_);
  void watchdog_loop() GC_EXCLUDES(mu_);
  ScenarioResult run_scenario(const ScenarioRequest& req, int worker,
                              double deadline_at) GC_EXCLUDES(mu_);
  /// The cold-flow path: retry loop over partition leases under the
  /// recovery driver. Returns the steady lattice; fills stats/partition.
  lbm::Lattice compute_flow(const ScenarioRequest& req, int worker,
                            double deadline_at, obs::RunStats* stats,
                            int* partition_out) GC_EXCLUDES(mu_);
  void set_queue_gauge(int depth);
  void set_worker_slot(int worker, int slot, u64 lease) GC_EXCLUDES(mu_);
  bool expired(double deadline_at) const;
  /// True once stop() decided to abort rather than drain.
  bool aborting() const { return aborting_.load(std::memory_order_acquire); }
  static core::PartitionSpec pool_spec(const ServiceConfig& cfg);

  ServiceConfig cfg_;
  Timer clock_;  ///< deadline timebase (absolute ms since construction)
  FlowCache cache_;
  core::PartitionPool pool_;

  /// Canonical lock order: a worker resolving a scenario may lease a
  /// partition and touch the cache while bookkeeping under mu_ is
  /// re-taken in between, but never the other way around — nothing in
  /// core/ or the cache ever calls back into the service.
  mutable std::mutex mu_
      GC_ACQUIRED_BEFORE(core::PartitionPool::mu_, FlowCache::mu_);
  std::condition_variable cv_work_;   ///< queue became non-empty / unpaused
  std::condition_variable cv_space_;  ///< queue has room again
  std::condition_variable cv_idle_;   ///< queue empty and nothing in flight
  std::condition_variable cv_watchdog_;  ///< watchdog shutdown signal
  std::deque<Job> queue_ GC_GUARDED_BY(mu_);
  std::vector<WorkerState> wstate_ GC_GUARDED_BY(mu_);
  int in_flight_ GC_GUARDED_BY(mu_) = 0;
  bool paused_ GC_GUARDED_BY(mu_) = false;
  /// Workers exit (set at the end of stop()).
  bool stop_ GC_GUARDED_BY(mu_) = false;
  /// submit()/try_submit() gate.
  bool accepting_ GC_GUARDED_BY(mu_) = true;
  /// stop() entered (idempotence).
  bool stop_begun_ GC_GUARDED_BY(mu_) = false;
  bool stop_drained_ GC_GUARDED_BY(mu_) = false;
  bool watchdog_stop_ GC_GUARDED_BY(mu_) = false;
  std::atomic<bool> aborting_{false};
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace gc::service
