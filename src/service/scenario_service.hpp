// The ensemble scenario service: the paper's Section 6 vision of the
// cluster as a *dispersion calculation appliance* — emergency-response
// queries ("release at X under wind W, where does the plume go?") arrive
// as requests, not as hand-written simulation drivers. The service owns
// a PartitionPool (the cluster), a bounded request queue, a small worker
// pool, and the steady-state FlowCache. Each worker takes one request,
// resolves its flow field (cache hit: restore the frozen checkpoint;
// miss: lease a cluster partition and spin the LBM up), then runs the
// Lowe–Succi tracer phase against the frozen flow and fulfils the
// request's future.
//
// Determinism: tracers are seeded and the flow they read is frozen, so a
// cached scenario reproduces a cold scenario bit-exactly — the cache is
// purely a performance layer (tests assert this).
//
// Observability: every scenario runs under a service.scenario span (tid
// = worker index); cache traffic lands on the service.cache_hits /
// service.cache_misses counters and queue pressure on the
// service.queue_depth gauge — all names in the span canon.
#pragma once

#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/partition.hpp"
#include "service/flow_cache.hpp"
#include "service/scenario.hpp"

namespace gc::service {

struct ServiceConfig {
  /// Flow-cache directory; survives service restarts (a warm directory
  /// makes every first request a hit).
  std::string cache_dir = "flow_cache";
  /// Bounded queue: submit() blocks and try_submit() refuses once this
  /// many requests are waiting (back-pressure instead of OOM).
  int queue_capacity = 16;
  /// Worker threads draining the queue. Independent scenarios batch
  /// across the cluster: each cache-missing worker leases its own
  /// partition, so up to min(workers, partitions) flows run at once.
  int workers = 2;
  /// Cluster partitions in the pool.
  int partitions = 2;
  /// Shape of every partition (node grid, backend, overlap, trace).
  core::PartitionSpec partition{};
  /// Service-level spans/counters/gauges land here. Not owned; may be
  /// null. (Partition-internal tracing is wired via `partition.trace`.)
  obs::TraceRecorder* trace = nullptr;
  /// Construct with the workers parked; start() releases them. Lets
  /// tests fill the bounded queue deterministically.
  bool start_paused = false;
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig cfg);
  /// Stops accepting work, finishes in-flight scenarios, fails still-
  /// queued requests with gc::Error, joins the workers.
  ~ScenarioService();

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Enqueues a request; blocks while the queue is full. The returned
  /// future yields the result or rethrows the scenario's failure.
  std::future<ScenarioResult> submit(ScenarioRequest req);

  /// Non-blocking submit: false (and no future) when the queue is full
  /// or the service is shutting down.
  bool try_submit(ScenarioRequest req, std::future<ScenarioResult>* out);

  /// Releases workers parked by start_paused (no-op otherwise).
  void start();

  /// Blocks until the queue is empty and no scenario is in flight.
  void drain();

  /// Requests waiting in the queue right now (excludes in-flight).
  int queue_depth() const;

  FlowCache& cache() { return cache_; }
  core::PartitionPool& partitions() { return pool_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  struct Job {
    ScenarioRequest req;
    std::promise<ScenarioResult> promise;
  };

  void worker_loop(int worker);
  ScenarioResult run_scenario(const ScenarioRequest& req, int worker);
  void set_queue_gauge(int depth);

  ServiceConfig cfg_;
  FlowCache cache_;
  core::PartitionPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< queue became non-empty / unpaused
  std::condition_variable cv_space_;  ///< queue has room again
  std::condition_variable cv_idle_;   ///< queue empty and nothing in flight
  std::deque<Job> queue_;
  int in_flight_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gc::service
