#include "service/flow_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "io/checkpoint.hpp"
#include "util/checksum.hpp"

namespace gc::service {

namespace {

// Incremental two-seed CRC digest. crc32 is 32 bits; hashing the same
// byte stream under two different seeds and packing the results yields
// the u64 digests the cache keys on. Not cryptographic — the cache is a
// performance layer over trusted local state, and a (vanishingly rare)
// collision costs correctness of one entry name, which the bit-exact
// service tests would catch.
struct Digest64 {
  u32 lo = 0;
  u32 hi = 0x9e3779b9u;  // any fixed second seed works; this is 2^32/phi

  void bytes(const void* p, std::size_t n) {
    lo = crc32(p, n, lo);
    hi = crc32(p, n, hi);
  }
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
  u64 value() const { return (static_cast<u64>(hi) << 32) | lo; }
};

}  // namespace

u64 geometry_hash(const lbm::Lattice& lat) {
  Digest64 d;
  const Int3 dim = lat.dim();
  d.pod(dim.x);
  d.pod(dim.y);
  d.pod(dim.z);
  if (!lat.flags().empty()) {
    d.bytes(lat.flags().data(), lat.flags().size());
  }
  for (int face = 0; face < 6; ++face) {
    d.pod(static_cast<u8>(lat.face_bc(static_cast<lbm::Face>(face))));
  }
  d.pod(lat.inlet_density());
  const Vec3 uin = lat.inlet_velocity();
  d.pod(uin.x);
  d.pod(uin.y);
  d.pod(uin.z);
  // The profile callback itself is opaque; record only its presence and
  // let the key's profile_exponent distinguish parameterized profiles.
  d.pod(static_cast<u8>(lat.has_inlet_profile() ? 1 : 0));
  // Storage layout is part of the geometry identity: a flow checkpointed
  // from a sparse run must never be served to a dense request (and vice
  // versa) even when every physical field matches.
  d.pod(static_cast<u8>(lat.storage_mode()));
  for (const lbm::CurvedLink& link : lat.curved_links()) {
    d.pod(link.cell);
    d.pod(link.dir);
    d.pod(link.q);
  }
  return d.value();
}

std::string flow_key_stem(const FlowKey& key) {
  Digest64 d;
  d.pod(key.geometry_hash);
  d.pod(key.dim.x);
  d.pod(key.dim.y);
  d.pod(key.dim.z);
  d.pod(key.wind.x);
  d.pod(key.wind.y);
  d.pod(key.wind.z);
  d.pod(key.profile_exponent);
  d.pod(key.params.tau);
  d.pod(static_cast<u8>(key.params.collision));
  d.pod(static_cast<u8>(key.params.storage));
  d.pod(key.spin_up_steps);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flow_%016llx",
                static_cast<unsigned long long>(d.value()));
  return std::string(buf);
}

FlowCache::FlowCache(std::string dir, FlowCacheConfig cfg)
    : dir_(std::move(dir)), cfg_(cfg) {
  std::filesystem::create_directories(dir_);
  // No other thread can hold a reference yet, but scavenging mutates the
  // guarded index, so take the lock and honor GC_REQUIRES(mu_) anyway.
  std::lock_guard<std::mutex> lock(mu_);
  scavenge_and_index();
}

void FlowCache::scavenge_and_index() {
  namespace fs = std::filesystem;
  // One non-recursive pass: entry files live flat in dir_; anything in a
  // subdirectory (e.g. a recovery/ tree) is not ours to touch.
  std::set<std::string> ckpts;
  std::set<std::string> manis;
  std::vector<fs::path> tmps;
  for (const auto& ent : fs::directory_iterator(dir_)) {
    if (!ent.is_regular_file()) continue;
    const fs::path& p = ent.path();
    const std::string ext = p.extension().string();
    if (ext == ".tmp") {
      tmps.push_back(p);
    } else if (ext == ".gclb") {
      ckpts.insert(p.stem().string());
    } else if (ext == ".gcmf") {
      manis.insert(p.stem().string());
    }
  }
  // Crash debris: torn atomic writes and half-committed entries. A
  // checkpoint without a manifest is the commit-protocol crash window
  // (death between the two writes); a manifest without a checkpoint is
  // a torn eviction. Both read as "no entry" and the files only waste
  // budget, so reclaim them.
  for (const fs::path& p : tmps) {
    fs::remove(p);
    stats_.scavenged += 1;
  }
  for (const std::string& s : ckpts) {
    if (manis.count(s)) continue;
    fs::remove(fs::path(dir_) / (s + ".gclb"));
    stats_.scavenged += 1;
  }
  for (const std::string& s : manis) {
    if (ckpts.count(s)) continue;
    fs::remove(fs::path(dir_) / (s + ".gcmf"));
    stats_.scavenged += 1;
  }
  // Index the complete pairs, seeding LRU order from manifest mtimes so
  // a restart evicts the same "oldest first" a live cache would have.
  std::vector<std::pair<fs::file_time_type, std::string>> order;
  for (const std::string& s : manis) {
    if (!ckpts.count(s)) continue;
    std::error_code ec;
    const auto t = fs::last_write_time(fs::path(dir_) / (s + ".gcmf"), ec);
    order.emplace_back(ec ? fs::file_time_type::min() : t, s);
  }
  std::sort(order.begin(), order.end());
  const auto fsize = [this](const std::string& name) -> i64 {
    std::error_code ec;
    const auto n = fs::file_size(fs::path(dir_) / name, ec);
    return ec ? 0 : static_cast<i64>(n);
  };
  for (const auto& [t, s] : order) {
    note_entry_locked(s, fsize(s + ".gclb") + fsize(s + ".gcmf"));
  }
  enforce_budget_locked();  // a pre-existing directory may be over budget
}

void FlowCache::note_entry_locked(const std::string& stem, i64 bytes) {
  drop_entry_locked(stem);  // replace, don't double-count
  entries_[stem] = DiskEntry{bytes, ++use_seq_};
  total_bytes_ += bytes;
  publish_bytes_locked();
}

void FlowCache::drop_entry_locked(const std::string& stem) {
  const auto it = entries_.find(stem);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void FlowCache::enforce_budget_locked() {
  if (cfg_.max_bytes <= 0) return;
  while (total_bytes_ > cfg_.max_bytes) {
    // LRU victim among evictable entries: never an entry being computed
    // or restored right now (its reader holds paths into those files).
    std::string victim;
    u64 oldest = 0;
    bool found = false;
    for (const auto& [stem, de] : entries_) {
      if (in_flight_.count(stem) || restoring_.count(stem)) continue;
      if (!found || de.last_use < oldest) {
        victim = stem;
        oldest = de.last_use;
        found = true;
      }
    }
    if (!found) break;  // everything pinned; re-checked at the next commit
    // Manifest first: a crash between the two removes leaves a
    // checkpoint without a manifest — an entry that does not exist,
    // reclaimed by the next scavenge. Removing in the other order could
    // leave a manifest pointing at nothing, which a reader would have
    // to treat as corruption.
    std::filesystem::remove(dir_ + "/" + victim + ".gcmf");
    std::filesystem::remove(dir_ + "/" + victim + ".gclb");
    stats_.evictions += 1;
    if (cfg_.trace) {
      cfg_.trace->add_counter("service.cache_evictions", 0, 1);
    }
    drop_entry_locked(victim);
  }
  publish_bytes_locked();
}

void FlowCache::publish_bytes_locked() {
  if (cfg_.trace) {
    cfg_.trace->set_gauge("service.cache_bytes", 0,
                          static_cast<double>(total_bytes_));
  }
}

std::string FlowCache::checkpoint_path(const FlowKey& key) const {
  return dir_ + "/" + flow_key_stem(key) + ".gclb";
}

std::string FlowCache::manifest_path(const FlowKey& key) const {
  return dir_ + "/" + flow_key_stem(key) + ".gcmf";
}

bool FlowCache::contains(const FlowKey& key) const {
  return std::filesystem::exists(manifest_path(key));
}

FlowCache::Stats FlowCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

i64 FlowCache::bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return total_bytes_;
}

FlowCache::Entry FlowCache::get_or_compute(
    const FlowKey& key, const std::function<lbm::Lattice()>& compute) {
  const std::string stem = flow_key_stem(key);
  const std::string ckpt = checkpoint_path(key);
  const std::string mani = manifest_path(key);

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Someone is computing this key right now: wait for the commit (or
      // for the computer to fail, in which case we take over below).
      cv_.wait(lock, [this, &stem] { return in_flight_.count(stem) == 0; });
      if (std::filesystem::exists(mani)) {
        stats_.hits += 1;
        // Pin the entry while we read it unlocked: the LRU evictor must
        // not delete the files out from under the load.
        restoring_.insert(stem);
        const auto it = entries_.find(stem);
        if (it != entries_.end()) it->second.last_use = ++use_seq_;
        lock.unlock();
        try {
          io::ClusterManifest m = io::load_manifest(mani);
          Entry e{io::load_checkpoint(dir_ + "/" + m.rank_files.at(0)),
                  /*hit=*/true, /*steady_step=*/m.step};
          {
            std::unique_lock<std::mutex> relock(mu_);
            restoring_.erase(stem);
          }
          return e;
        } catch (const Error&) {
          // Torn or corrupted entry: drop it and fall through to a
          // fresh compute. The hit we just counted becomes a miss.
          std::unique_lock<std::mutex> relock(mu_);
          restoring_.erase(stem);
          stats_.hits -= 1;
          std::filesystem::remove(mani);
          std::filesystem::remove(ckpt);
          drop_entry_locked(stem);
          publish_bytes_locked();
        }
      }
      // Claim the compute. Re-take the lock state we hold from the wait
      // above (or from the relock path we only reach unlocked).
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_.count(stem) != 0) continue;  // lost the race; re-wait
      if (std::filesystem::exists(mani)) continue;  // committed meanwhile
      in_flight_.insert(stem);
      stats_.misses += 1;
      stats_.computes += 1;
    }
    try {
      Entry entry{compute(), /*hit=*/false, /*steady_step=*/key.spin_up_steps};
      // Commit protocol: checkpoint first, manifest last. Each write is
      // itself tmp+rename-atomic, so a crash between the two leaves a
      // checkpoint without a manifest — an entry that does not exist.
      io::save_checkpoint(ckpt, entry.flow);
      io::ClusterManifest m;
      m.step = key.spin_up_steps;
      m.grid = Int3{1, 1, 1};
      m.lattice_dim = entry.flow.dim();
      m.rank_files.push_back(stem + ".gclb");
      io::save_manifest(mani, m);
      {
        std::unique_lock<std::mutex> lock(mu_);
        in_flight_.erase(stem);
        const auto fsize = [](const std::string& p) -> i64 {
          std::error_code ec;
          const auto n = std::filesystem::file_size(p, ec);
          return ec ? 0 : static_cast<i64>(n);
        };
        // Account the commit, then enforce the budget while the lock is
        // still held — the just-committed entry is no longer in flight,
        // so it is itself evictable when it alone blows the budget (the
        // caller already holds the flow in memory either way).
        note_entry_locked(stem, fsize(ckpt) + fsize(mani));
        enforce_budget_locked();
      }
      cv_.notify_all();
      return entry;
    } catch (const std::exception&) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        in_flight_.erase(stem);
      }
      cv_.notify_all();
      throw;
    }
  }
}

}  // namespace gc::service
