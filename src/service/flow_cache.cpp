#include "service/flow_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "io/checkpoint.hpp"
#include "util/checksum.hpp"

namespace gc::service {

namespace {

// Incremental two-seed CRC digest. crc32 is 32 bits; hashing the same
// byte stream under two different seeds and packing the results yields
// the u64 digests the cache keys on. Not cryptographic — the cache is a
// performance layer over trusted local state, and a (vanishingly rare)
// collision costs correctness of one entry name, which the bit-exact
// service tests would catch.
struct Digest64 {
  u32 lo = 0;
  u32 hi = 0x9e3779b9u;  // any fixed second seed works; this is 2^32/phi

  void bytes(const void* p, std::size_t n) {
    lo = crc32(p, n, lo);
    hi = crc32(p, n, hi);
  }
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
  u64 value() const { return (static_cast<u64>(hi) << 32) | lo; }
};

}  // namespace

u64 geometry_hash(const lbm::Lattice& lat) {
  Digest64 d;
  const Int3 dim = lat.dim();
  d.pod(dim.x);
  d.pod(dim.y);
  d.pod(dim.z);
  if (!lat.flags().empty()) {
    d.bytes(lat.flags().data(), lat.flags().size());
  }
  for (int face = 0; face < 6; ++face) {
    d.pod(static_cast<u8>(lat.face_bc(static_cast<lbm::Face>(face))));
  }
  d.pod(lat.inlet_density());
  const Vec3 uin = lat.inlet_velocity();
  d.pod(uin.x);
  d.pod(uin.y);
  d.pod(uin.z);
  // The profile callback itself is opaque; record only its presence and
  // let the key's profile_exponent distinguish parameterized profiles.
  d.pod(static_cast<u8>(lat.has_inlet_profile() ? 1 : 0));
  for (const lbm::CurvedLink& link : lat.curved_links()) {
    d.pod(link.cell);
    d.pod(link.dir);
    d.pod(link.q);
  }
  return d.value();
}

std::string flow_key_stem(const FlowKey& key) {
  Digest64 d;
  d.pod(key.geometry_hash);
  d.pod(key.dim.x);
  d.pod(key.dim.y);
  d.pod(key.dim.z);
  d.pod(key.wind.x);
  d.pod(key.wind.y);
  d.pod(key.wind.z);
  d.pod(key.profile_exponent);
  d.pod(key.params.tau);
  d.pod(static_cast<u8>(key.params.collision));
  d.pod(static_cast<u8>(key.params.storage));
  d.pod(key.spin_up_steps);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flow_%016llx",
                static_cast<unsigned long long>(d.value()));
  return std::string(buf);
}

FlowCache::FlowCache(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string FlowCache::checkpoint_path(const FlowKey& key) const {
  return dir_ + "/" + flow_key_stem(key) + ".gclb";
}

std::string FlowCache::manifest_path(const FlowKey& key) const {
  return dir_ + "/" + flow_key_stem(key) + ".gcmf";
}

bool FlowCache::contains(const FlowKey& key) const {
  return std::filesystem::exists(manifest_path(key));
}

FlowCache::Stats FlowCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

FlowCache::Entry FlowCache::get_or_compute(
    const FlowKey& key, const std::function<lbm::Lattice()>& compute) {
  const std::string stem = flow_key_stem(key);
  const std::string ckpt = checkpoint_path(key);
  const std::string mani = manifest_path(key);

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Someone is computing this key right now: wait for the commit (or
      // for the computer to fail, in which case we take over below).
      cv_.wait(lock, [this, &stem] { return in_flight_.count(stem) == 0; });
      if (std::filesystem::exists(mani)) {
        stats_.hits += 1;
        lock.unlock();
        try {
          io::ClusterManifest m = io::load_manifest(mani);
          return Entry{io::load_checkpoint(dir_ + "/" + m.rank_files.at(0)),
                       /*hit=*/true, /*steady_step=*/m.step};
        } catch (const Error&) {
          // Torn or corrupted entry: drop it and fall through to a
          // fresh compute. The hit we just counted becomes a miss.
          std::unique_lock<std::mutex> relock(mu_);
          stats_.hits -= 1;
          std::filesystem::remove(mani);
          std::filesystem::remove(ckpt);
        }
      }
      // Claim the compute. Re-take the lock state we hold from the wait
      // above (or from the relock path we only reach unlocked).
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_.count(stem) != 0) continue;  // lost the race; re-wait
      if (std::filesystem::exists(mani)) continue;  // committed meanwhile
      in_flight_.insert(stem);
      stats_.misses += 1;
      stats_.computes += 1;
    }
    try {
      Entry entry{compute(), /*hit=*/false, /*steady_step=*/key.spin_up_steps};
      // Commit protocol: checkpoint first, manifest last. Each write is
      // itself tmp+rename-atomic, so a crash between the two leaves a
      // checkpoint without a manifest — an entry that does not exist.
      io::save_checkpoint(ckpt, entry.flow);
      io::ClusterManifest m;
      m.step = key.spin_up_steps;
      m.grid = Int3{1, 1, 1};
      m.lattice_dim = entry.flow.dim();
      m.rank_files.push_back(stem + ".gclb");
      io::save_manifest(mani, m);
      {
        std::unique_lock<std::mutex> lock(mu_);
        in_flight_.erase(stem);
      }
      cv_.notify_all();
      return entry;
    } catch (...) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        in_flight_.erase(stem);
      }
      cv_.notify_all();
      throw;
    }
  }
}

}  // namespace gc::service
