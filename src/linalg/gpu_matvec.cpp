#include "linalg/gpu_matvec.hpp"

#include <cmath>

namespace gc::linalg {

using gpusim::FragmentContext;
using gpusim::Rect;
using gpusim::RGBA;

namespace {

/// One fragment per row: acc += val_k * x[ptr_k] over the ELL width.
/// Unit 0: x; units 1 + 2k: indirection; units 2 + 2k: coefficients.
class MatvecProgram : public gpusim::FragmentProgram {
 public:
  explicit MatvecProgram(int k) : k_(k) {}

  RGBA shade(FragmentContext& ctx) const override {
    const int x = ctx.x();
    const int y = ctx.y();
    float acc = 0.0f;
    for (int k = 0; k < k_; ++k) {
      const RGBA ptr = ctx.fetch(1 + 2 * k, x, y);
      const RGBA val = ctx.fetch(2 + 2 * k, x, y);
      if (val.r == 0.0f) continue;  // padding slot
      // Dependent (indirect) fetch: coordinates came from a texture.
      const RGBA xv = ctx.fetch(0, static_cast<int>(ptr.r),
                                static_cast<int>(ptr.g));
      acc += val.r * xv.r;
    }
    RGBA out;
    out.r = acc;
    return out;
  }
  std::string name() const override { return "sparse_matvec"; }
  int arithmetic_instructions() const override { return 2 * k_; }

 private:
  int k_;
};

}  // namespace

GpuSparseMatrix::GpuSparseMatrix(gpusim::GpuDevice& dev, const CsrMatrix& a)
    : dev_(dev), rows_(a.rows()), k_(a.max_row_nnz()) {
  GC_CHECK_MSG(a.rows() == a.cols(), "square matrices only");
  w_ = std::max(1, static_cast<int>(std::ceil(std::sqrt(double(rows_)))));
  h_ = (rows_ + w_ - 1) / w_;

  x_tex_ = dev_.create_texture(w_, h_);
  y_tex_ = dev_.create_texture(w_, h_);

  // Build the ELL slot textures.
  const std::size_t texels = static_cast<std::size_t>(w_) * h_;
  for (int k = 0; k < k_; ++k) {
    std::vector<float> ptr(texels * 4, 0.0f);
    std::vector<float> val(texels * 4, 0.0f);
    for (int r = 0; r < rows_; ++r) {
      const i64 begin = a.row_ptr()[static_cast<std::size_t>(r)];
      const i64 end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
      if (begin + k >= end) continue;
      const int col = a.col_idx()[static_cast<std::size_t>(begin + k)];
      const Real v = a.values()[static_cast<std::size_t>(begin + k)];
      const auto t = static_cast<std::size_t>(r) * 4;
      ptr[t] = static_cast<float>(col % w_);
      ptr[t + 1] = static_cast<float>(col / w_);
      val[t] = v;
    }
    ptr_tex_.push_back(dev_.create_texture(w_, h_));
    val_tex_.push_back(dev_.create_texture(w_, h_));
    dev_.upload(ptr_tex_.back(), ptr);
    dev_.upload(val_tex_.back(), val);
  }
}

GpuSparseMatrix::~GpuSparseMatrix() {
  dev_.destroy_texture(x_tex_);
  dev_.destroy_texture(y_tex_);
  for (auto id : ptr_tex_) dev_.destroy_texture(id);
  for (auto id : val_tex_) dev_.destroy_texture(id);
}

std::vector<Real> GpuSparseMatrix::multiply(const std::vector<Real>& x) {
  GC_CHECK(static_cast<int>(x.size()) == rows_);
  const std::size_t texels = static_cast<std::size_t>(w_) * h_;
  std::vector<float> xt(texels * 4, 0.0f);
  for (int r = 0; r < rows_; ++r) {
    xt[static_cast<std::size_t>(r) * 4] = x[static_cast<std::size_t>(r)];
  }
  dev_.upload(x_tex_, xt);

  std::vector<gpusim::TextureId> bound;
  bound.push_back(x_tex_);
  for (int k = 0; k < k_; ++k) {
    bound.push_back(ptr_tex_[static_cast<std::size_t>(k)]);
    bound.push_back(val_tex_[static_cast<std::size_t>(k)]);
  }
  MatvecProgram prog(k_);
  dev_.render(prog, y_tex_, Rect{0, 0, w_, h_}, bound, gpusim::Uniforms{});

  const std::vector<float> yt = dev_.readback(y_tex_);
  std::vector<Real> y(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    y[static_cast<std::size_t>(r)] = yt[static_cast<std::size_t>(r) * 4];
  }
  return y;
}

}  // namespace gc::linalg
