#include "linalg/distributed_cg.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <set>

#include "netsim/tags.hpp"

namespace gc::linalg {

using netsim::Comm;
using netsim::Payload;

namespace {

struct RankPlan {
  int lo = 0;
  int hi = 0;  ///< owned rows [lo, hi)
  // Local matrix in CSR over local slots: owned rows remapped to
  // [0, hi-lo), proxy columns appended after the owned ones.
  std::vector<i64> row_ptr;
  std::vector<int> col_slot;
  std::vector<Real> values;
  std::vector<int> proxy_global;           ///< global index per proxy slot
  std::map<int, std::vector<int>> send_to; ///< rank -> my global indices
  std::map<int, std::vector<int>> recv_from;  ///< rank -> proxy slot list
};

int owner_of(int global, int n, int ranks) {
  // Near-even contiguous partition, mirroring split_start in the
  // decomposition module.
  const int base = n / ranks;
  const int rem = n % ranks;
  // Rows [r*base + min(r, rem), ...) belong to rank r.
  // Invert by scanning (ranks is small).
  for (int r = 0; r < ranks; ++r) {
    const int lo = r * base + std::min(r, rem);
    const int hi = (r + 1) * base + std::min(r + 1, rem);
    if (global >= lo && global < hi) return r;
  }
  GC_CHECK(false);
  return -1;
}

RankPlan build_plan(const CsrMatrix& a, int rank, int ranks) {
  const int n = a.rows();
  const int base = n / ranks;
  const int rem = n % ranks;
  RankPlan plan;
  plan.lo = rank * base + std::min(rank, rem);
  plan.hi = (rank + 1) * base + std::min(rank + 1, rem);

  // Collect the external (proxy) columns my rows touch.
  std::set<int> external;
  for (int r = plan.lo; r < plan.hi; ++r) {
    for (i64 k = a.row_ptr()[static_cast<std::size_t>(r)];
         k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const int col = a.col_idx()[static_cast<std::size_t>(k)];
      if (col < plan.lo || col >= plan.hi) external.insert(col);
    }
  }
  std::map<int, int> proxy_slot;  // global -> local slot
  const int owned = plan.hi - plan.lo;
  for (int g : external) {
    proxy_slot[g] = owned + static_cast<int>(plan.proxy_global.size());
    plan.proxy_global.push_back(g);
    plan.recv_from[owner_of(g, n, ranks)].push_back(proxy_slot[g]);
  }

  // Remap my rows onto local slots.
  plan.row_ptr.push_back(0);
  for (int r = plan.lo; r < plan.hi; ++r) {
    for (i64 k = a.row_ptr()[static_cast<std::size_t>(r)];
         k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const int col = a.col_idx()[static_cast<std::size_t>(k)];
      const int slot = (col >= plan.lo && col < plan.hi)
                           ? col - plan.lo
                           : proxy_slot.at(col);
      plan.col_slot.push_back(slot);
      plan.values.push_back(a.values()[static_cast<std::size_t>(k)]);
    }
    plan.row_ptr.push_back(static_cast<i64>(plan.col_slot.size()));
  }
  return plan;
}

}  // namespace

DistributedCgStats distributed_cg_solve(const CsrMatrix& a,
                                        const std::vector<Real>& b,
                                        std::vector<Real>& x, int ranks,
                                        const CgParams& params) {
  GC_CHECK(a.rows() == a.cols());
  GC_CHECK(static_cast<int>(b.size()) == a.rows());
  GC_CHECK(x.size() == b.size());
  GC_CHECK(ranks >= 1);

  DistributedCgStats stats;
  std::mutex out_mu;

  // Every rank also needs to know which of its entries the others want:
  // build all plans up front (cheap, and mirrors a real setup phase).
  std::vector<RankPlan> plans;
  plans.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) plans.push_back(build_plan(a, r, ranks));
  for (int r = 0; r < ranks; ++r) {
    for (const auto& [owner, slots] : plans[static_cast<std::size_t>(r)].recv_from) {
      auto& list = plans[static_cast<std::size_t>(owner)].send_to[r];
      for (int slot : slots) {
        list.push_back(plans[static_cast<std::size_t>(r)]
                           .proxy_global[static_cast<std::size_t>(
                               slot - (plans[static_cast<std::size_t>(r)].hi -
                                       plans[static_cast<std::size_t>(r)].lo))]);
      }
    }
  }
  for (const RankPlan& p : plans) {
    stats.proxy_values_exchanged += static_cast<i64>(p.proxy_global.size());
    stats.messages_per_iteration += static_cast<i64>(p.recv_from.size());
  }

  netsim::MpiLite world(ranks);
  world.run([&](Comm& comm) {
    const RankPlan& plan = plans[static_cast<std::size_t>(comm.rank())];
    const int owned = plan.hi - plan.lo;
    const int slots = owned + static_cast<int>(plan.proxy_global.size());

    // Local vectors: x, r, p over owned entries; p additionally has the
    // proxy tail refreshed each iteration.
    std::vector<Real> xl(b.begin() + plan.lo, b.begin() + plan.hi);
    for (int i = 0; i < owned; ++i) {
      xl[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(plan.lo + i)];
    }
    std::vector<Real> p_full(static_cast<std::size_t>(slots), Real(0));

    // Exchange the proxy entries of the vector whose owned part is `v`.
    auto refresh_proxies = [&](const std::vector<Real>& v) {
      for (const auto& [dst, globals] : plan.send_to) {
        Payload out;
        out.reserve(globals.size());
        for (int g : globals) {
          out.push_back(v[static_cast<std::size_t>(g - plan.lo)]);
        }
        comm.send(dst, netsim::kCgProxyBase + comm.rank(), std::move(out));
      }
      for (const auto& [src, proxy_slots] : plan.recv_from) {
        const Payload in = comm.recv(src, netsim::kCgProxyBase + src);
        GC_CHECK(in.size() == proxy_slots.size());
        for (std::size_t i = 0; i < in.size(); ++i) {
          p_full[static_cast<std::size_t>(proxy_slots[i])] = in[i];
        }
      }
    };

    auto local_matvec = [&](const std::vector<Real>& v_owned) {
      // v_owned fills the owned slots; proxies were refreshed already.
      for (int i = 0; i < owned; ++i) {
        p_full[static_cast<std::size_t>(i)] = v_owned[static_cast<std::size_t>(i)];
      }
      std::vector<Real> y(static_cast<std::size_t>(owned), Real(0));
      for (int r = 0; r < owned; ++r) {
        double acc = 0.0;
        for (i64 k = plan.row_ptr[static_cast<std::size_t>(r)];
             k < plan.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
          acc += static_cast<double>(
                     plan.values[static_cast<std::size_t>(k)]) *
                 p_full[static_cast<std::size_t>(
                     plan.col_slot[static_cast<std::size_t>(k)])];
        }
        y[static_cast<std::size_t>(r)] = static_cast<Real>(acc);
      }
      return y;
    };

    std::vector<Real> bl(b.begin() + plan.lo, b.begin() + plan.hi);
    const double bnorm =
        std::sqrt(comm.allreduce_sum(dot(bl, bl)));

    // r = b - A x
    refresh_proxies(xl);
    std::vector<Real> rl = bl;
    {
      const std::vector<Real> ax = local_matvec(xl);
      for (int i = 0; i < owned; ++i) {
        rl[static_cast<std::size_t>(i)] -= ax[static_cast<std::size_t>(i)];
      }
    }
    std::vector<Real> pl = rl;
    double rr = comm.allreduce_sum(dot(rl, rl));

    CgResult local_result;
    for (int it = 0; it < params.max_iterations; ++it) {
      local_result.residual = bnorm == 0.0 ? 0.0 : std::sqrt(rr) / bnorm;
      if (local_result.residual < params.rel_tolerance) {
        local_result.converged = true;
        break;
      }
      refresh_proxies(pl);
      const std::vector<Real> ap = local_matvec(pl);
      const double pap = comm.allreduce_sum(dot(pl, ap));
      GC_CHECK_MSG(pap > 0.0, "matrix not positive definite");
      const Real alpha = static_cast<Real>(rr / pap);
      axpy(alpha, pl, xl);
      axpy(-alpha, ap, rl);
      const double rr_new = comm.allreduce_sum(dot(rl, rl));
      const Real beta = static_cast<Real>(rr_new / rr);
      for (int i = 0; i < owned; ++i) {
        pl[static_cast<std::size_t>(i)] =
            rl[static_cast<std::size_t>(i)] +
            beta * pl[static_cast<std::size_t>(i)];
      }
      rr = rr_new;
      local_result.iterations = it + 1;
    }
    if (!local_result.converged) {
      local_result.residual = bnorm == 0.0 ? 0.0 : std::sqrt(rr) / bnorm;
      local_result.converged = local_result.residual < params.rel_tolerance;
    }

    // Publish the owned slice (and, from rank 0, the stats).
    {
      std::lock_guard<std::mutex> lock(out_mu);
      for (int i = 0; i < owned; ++i) {
        x[static_cast<std::size_t>(plan.lo + i)] =
            xl[static_cast<std::size_t>(i)];
      }
      if (comm.rank() == 0) stats.result = local_result;
    }
  });
  return stats;
}

}  // namespace gc::linalg
