#include "linalg/cg.hpp"

#include <cmath>

namespace gc::linalg {

CgResult cg_solve(
    const std::function<std::vector<Real>(const std::vector<Real>&)>& apply,
    const std::vector<Real>& b, std::vector<Real>& x, const CgParams& params) {
  GC_CHECK(b.size() == x.size());
  CgResult result;

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), Real(0));
    result.converged = true;
    return result;
  }

  std::vector<Real> r = b;
  {
    const std::vector<Real> ax = apply(x);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
  }
  std::vector<Real> p = r;
  double rr = dot(r, r);

  for (int it = 0; it < params.max_iterations; ++it) {
    result.residual = std::sqrt(rr) / bnorm;
    if (result.residual < params.rel_tolerance) {
      result.converged = true;
      return result;
    }
    const std::vector<Real> ap = apply(p);
    const double pap = dot(p, ap);
    GC_CHECK_MSG(pap > 0.0, "matrix is not positive definite (p.Ap = "
                                << pap << ")");
    const Real alpha = static_cast<Real>(rr / pap);
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rr_new = dot(r, r);
    const Real beta = static_cast<Real>(rr_new / rr);
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    result.iterations = it + 1;
  }
  result.residual = std::sqrt(rr) / bnorm;
  result.converged = result.residual < params.rel_tolerance;
  return result;
}

CgResult cg_solve(const CsrMatrix& a, const std::vector<Real>& b,
                  std::vector<Real>& x, const CgParams& params) {
  return cg_solve([&a](const std::vector<Real>& v) { return a.multiply(v); },
                  b, x, params);
}

}  // namespace gc::linalg
