// Sparse matrices for the implicit-method path of Section 6: implicit
// finite differences and FEM reduce to solving large sparse systems
// Ax = y; this is the substrate the (distributed, GPU) conjugate-gradient
// solvers operate on.
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/vec3.hpp"

namespace gc::linalg {

/// Compressed-sparse-row matrix with Real (float) values, mirroring the
/// 32-bit precision of the GPU path.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int rows, int cols, std::vector<i64> row_ptr,
            std::vector<int> col_idx, std::vector<Real> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  i64 nnz() const { return static_cast<i64>(values_.size()); }

  const std::vector<i64>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<Real>& values() const { return values_; }

  /// y = A x.
  std::vector<Real> multiply(const std::vector<Real>& x) const;

  /// Max nonzeros in any row (the ELL width for the GPU texture layout).
  int max_row_nnz() const;

  bool is_symmetric(Real tol = Real(1e-6)) const;

  /// 7-point Laplacian of a 3D grid with Dirichlet boundaries: the matrix
  /// of an implicit diffusion/pressure solve (Section 6's canonical
  /// sparse system). Diagonal 6 + eps, off-diagonals -1.
  static CsrMatrix poisson3d(Int3 dim, Real diagonal_shift = Real(0));

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<i64> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<Real> values_;
};

/// Dot product with double accumulation (CG needs stable reductions).
double dot(const std::vector<Real>& a, const std::vector<Real>& b);

/// y += alpha * x
void axpy(Real alpha, const std::vector<Real>& x, std::vector<Real>& y);

/// L2 norm.
double norm2(const std::vector<Real>& a);

}  // namespace gc::linalg
