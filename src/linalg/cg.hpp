// Conjugate gradient for symmetric positive-definite sparse systems — the
// iterative solver Section 6 cites (Krueger & Westermann; Bolz et al.)
// for implicit finite differences and FEM on the GPU (cluster).
#pragma once

#include <functional>
#include <vector>

#include "linalg/csr.hpp"

namespace gc::linalg {

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final ||b - Ax|| / ||b||
  bool converged = false;
};

struct CgParams {
  double rel_tolerance = 1e-5;
  int max_iterations = 1000;
};

/// Matrix-free CG: `apply` computes A x. `x` carries the initial guess
/// and receives the solution.
CgResult cg_solve(
    const std::function<std::vector<Real>(const std::vector<Real>&)>& apply,
    const std::vector<Real>& b, std::vector<Real>& x,
    const CgParams& params = {});

/// Convenience overload on a CSR matrix.
CgResult cg_solve(const CsrMatrix& a, const std::vector<Real>& b,
                  std::vector<Real>& x, const CgParams& params = {});

}  // namespace gc::linalg
