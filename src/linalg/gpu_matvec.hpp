// Sparse matrix-vector multiply on the simulated GPU using indirection
// textures (Section 2's "texture coordinates used to fetch texels from
// other textures" and Section 6's unstructured-grid recipe): the vector
// lives in a 2D texture; for each of the K = max-row-nnz slots an
// indirection texture stores the texel coordinates of the source vector
// entry and a value texture stores the matrix coefficient. One render
// pass evaluates y = A x with two dependent fetches per nonzero.
#pragma once

#include "gpusim/device.hpp"
#include "linalg/csr.hpp"

namespace gc::linalg {

class GpuSparseMatrix {
 public:
  /// Uploads the matrix in ELL layout (K indirection + K value textures).
  GpuSparseMatrix(gpusim::GpuDevice& dev, const CsrMatrix& a);
  ~GpuSparseMatrix();

  GpuSparseMatrix(const GpuSparseMatrix&) = delete;
  GpuSparseMatrix& operator=(const GpuSparseMatrix&) = delete;

  int rows() const { return rows_; }
  int ell_width() const { return k_; }
  int tex_width() const { return w_; }
  int tex_height() const { return h_; }

  /// y = A x: uploads x, runs the matvec pass, reads y back. Functionally
  /// exact against CsrMatrix::multiply up to float summation order.
  std::vector<Real> multiply(const std::vector<Real>& x);

 private:
  gpusim::GpuDevice& dev_;
  int rows_;
  int k_;
  int w_, h_;
  gpusim::TextureId x_tex_ = -1;
  gpusim::TextureId y_tex_ = -1;
  std::vector<gpusim::TextureId> ptr_tex_;  ///< K indirection textures
  std::vector<gpusim::TextureId> val_tex_;  ///< K coefficient textures
};

}  // namespace gc::linalg
