#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace gc::linalg {

CsrMatrix::CsrMatrix(int rows, int cols, std::vector<i64> row_ptr,
                     std::vector<int> col_idx, std::vector<Real> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  GC_CHECK(rows >= 0 && cols >= 0);
  GC_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows) + 1);
  GC_CHECK(row_ptr_.front() == 0);
  GC_CHECK(row_ptr_.back() == static_cast<i64>(col_idx_.size()));
  GC_CHECK(col_idx_.size() == values_.size());
  for (int c : col_idx_) GC_CHECK(c >= 0 && c < cols);
}

std::vector<Real> CsrMatrix::multiply(const std::vector<Real>& x) const {
  GC_CHECK(static_cast<int>(x.size()) == cols_);
  std::vector<Real> y(static_cast<std::size_t>(rows_), Real(0));
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (i64 k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = static_cast<Real>(acc);
  }
  return y;
}

int CsrMatrix::max_row_nnz() const {
  i64 best = 0;
  for (int r = 0; r < rows_; ++r) {
    best = std::max(best, row_ptr_[static_cast<std::size_t>(r) + 1] -
                              row_ptr_[static_cast<std::size_t>(r)]);
  }
  return static_cast<int>(best);
}

bool CsrMatrix::is_symmetric(Real tol) const {
  if (rows_ != cols_) return false;
  std::map<std::pair<int, int>, Real> entries;
  for (int r = 0; r < rows_; ++r) {
    for (i64 k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      entries[{r, col_idx_[static_cast<std::size_t>(k)]}] =
          values_[static_cast<std::size_t>(k)];
    }
  }
  for (const auto& [pos, v] : entries) {
    auto it = entries.find({pos.second, pos.first});
    const Real other = it == entries.end() ? Real(0) : it->second;
    if (std::abs(v - other) > tol) return false;
  }
  return true;
}

CsrMatrix CsrMatrix::poisson3d(Int3 dim, Real diagonal_shift) {
  const int n = static_cast<int>(dim.volume());
  auto idx = [&dim](int x, int y, int z) {
    return x + dim.x * (y + dim.y * z);
  };
  std::vector<i64> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> col_idx;
  std::vector<Real> values;
  col_idx.reserve(static_cast<std::size_t>(n) * 7);
  values.reserve(static_cast<std::size_t>(n) * 7);

  for (int z = 0; z < dim.z; ++z) {
    for (int y = 0; y < dim.y; ++y) {
      for (int x = 0; x < dim.x; ++x) {
        const int r = idx(x, y, z);
        // Row entries in column order for determinism.
        struct Entry {
          int col;
          Real val;
        };
        std::vector<Entry> row;
        row.push_back({r, Real(6) + diagonal_shift});
        auto add = [&row, &idx, &dim](int xx, int yy, int zz) {
          if (xx < 0 || yy < 0 || zz < 0 || xx >= dim.x || yy >= dim.y ||
              zz >= dim.z) {
            return;  // Dirichlet boundary: the neighbor term drops
          }
          row.push_back({idx(xx, yy, zz), Real(-1)});
        };
        add(x - 1, y, z);
        add(x + 1, y, z);
        add(x, y - 1, z);
        add(x, y + 1, z);
        add(x, y, z - 1);
        add(x, y, z + 1);
        std::sort(row.begin(), row.end(),
                  [](const Entry& a, const Entry& b) { return a.col < b.col; });
        for (const Entry& e : row) {
          col_idx.push_back(e.col);
          values.push_back(e.val);
        }
        row_ptr[static_cast<std::size_t>(r) + 1] =
            static_cast<i64>(col_idx.size());
      }
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

double dot(const std::vector<Real>& a, const std::vector<Real>& b) {
  GC_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

void axpy(Real alpha, const std::vector<Real>& x, std::vector<Real>& y) {
  GC_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const std::vector<Real>& a) { return std::sqrt(dot(a, a)); }

}  // namespace gc::linalg
