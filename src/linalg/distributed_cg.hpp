// Distributed conjugate gradient with the matrix/vector decomposition of
// Figure 15: rows are partitioned across nodes; each node's local vector
// holds its own entries plus "proxy" copies of the neighbor entries its
// rows reference. Every iteration exchanges exactly the proxy entries
// over the network before the local matvec — network-to-compute ratio
// O(1/N) per iteration, as Section 6 derives.
#pragma once

#include "linalg/cg.hpp"
#include "netsim/mpilite.hpp"

namespace gc::linalg {

struct DistributedCgStats {
  CgResult result;
  i64 proxy_values_exchanged = 0;  ///< per iteration, cluster-wide
  i64 messages_per_iteration = 0;
};

/// Solves A x = b on `ranks` logical nodes (MpiLite threads). `x` carries
/// the initial guess and receives the solution. The row partition is
/// contiguous and near-even.
DistributedCgStats distributed_cg_solve(const CsrMatrix& a,
                                        const std::vector<Real>& b,
                                        std::vector<Real>& x, int ranks,
                                        const CgParams& params = {});

}  // namespace gc::linalg
