// Streamline integration through the LBM velocity field (the Figure-12
// visualization): trilinear velocity sampling + RK2 (midpoint) advection
// from seed points, stopping at solids, domain exits or a length cap.
#pragma once

#include <vector>

#include "lbm/lattice.hpp"

namespace gc::viz {

/// Trilinearly interpolated velocity at a continuous position (cell-center
/// convention: sample (x,y,z) lies between centers floor(p) and floor(p)+1).
/// Solid cells contribute zero velocity.
Vec3 sample_velocity(const lbm::Lattice& lat, const std::vector<Vec3>& u,
                     Vec3 p);

struct StreamlineParams {
  Real step_size = Real(0.5);  ///< integration step, in cells
  int max_steps = 2000;
  Real min_speed = Real(1e-6);  ///< stop in stagnant regions
};

/// Integrates one streamline from `seed` (lattice coordinates).
std::vector<Vec3> trace_streamline(const lbm::Lattice& lat,
                                   const std::vector<Vec3>& u, Vec3 seed,
                                   const StreamlineParams& params = {});

/// Traces a bundle of streamlines from a set of seeds.
std::vector<std::vector<Vec3>> trace_streamlines(
    const lbm::Lattice& lat, const std::vector<Vec3>& u,
    const std::vector<Vec3>& seeds, const StreamlineParams& params = {});

}  // namespace gc::viz
