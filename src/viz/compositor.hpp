// Sort-last image compositing for online cluster visualization — the
// future-work capability of Section 5: "each node could rapidly render
// its contents, and the images could then be transferred through a
// specially designed composing network" (HP Sepia-2A, 450-500 MB/s).
// Each node renders its sub-domain into an RGBA tile with depth-ordered
// alpha; tiles composite front-to-back over a binary-swap-style tree.
#pragma once

#include <vector>

#include "core/decomposition.hpp"
#include "util/common.hpp"

namespace gc::viz {

/// A node's rendered tile: full-frame RGBA with premultiplied alpha.
struct ImageTile {
  int width = 0;
  int height = 0;
  std::vector<float> rgba;  ///< 4 floats per pixel, premultiplied

  static ImageTile blank(int w, int h);
};

/// Front-to-back "over" compositing: out = front + (1 - front.a) * back.
ImageTile composite_over(const ImageTile& front, const ImageTile& back);

/// Orders nodes front-to-back along the view axis and composites all
/// tiles (tiles[node] rendered from decomp.block(node)). `view_axis` is
/// 0/1/2 and `positive` selects the viewing direction.
ImageTile composite_cluster(const core::Decomposition3& decomp,
                            const std::vector<ImageTile>& tiles,
                            int view_axis, bool positive);

/// Renders one node's density sub-volume into a tile by maximum-intensity
/// style accumulation along the view axis (a cheap stand-in for the
/// volume rendering of Figure 13). `density` is the node's sub-volume in
/// x-fastest order; the tile covers the full global frame so tiles from
/// different nodes land in their own screen region.
ImageTile render_density_tile(const core::Decomposition3& decomp, int node,
                              const std::vector<float>& density,
                              int view_axis, float opacity_scale);

/// Timing model of the composing network: each composite step moves a
/// full frame at the Sepia DVI rate; a binary tree over n nodes has
/// ceil(log2 n) sequential stages.
double compositing_seconds(int nodes, int width, int height,
                           double link_Bps = 475e6);

}  // namespace gc::viz
