#include "viz/compositor.hpp"

#include <algorithm>
#include <cmath>

namespace gc::viz {

ImageTile ImageTile::blank(int w, int h) {
  ImageTile t;
  t.width = w;
  t.height = h;
  t.rgba.assign(static_cast<std::size_t>(w) * h * 4, 0.0f);
  return t;
}

ImageTile composite_over(const ImageTile& front, const ImageTile& back) {
  GC_CHECK(front.width == back.width && front.height == back.height);
  ImageTile out = front;
  for (std::size_t p = 0; p < out.rgba.size(); p += 4) {
    const float transparency = 1.0f - front.rgba[p + 3];
    for (int c = 0; c < 4; ++c) {
      out.rgba[p + static_cast<std::size_t>(c)] =
          front.rgba[p + static_cast<std::size_t>(c)] +
          transparency * back.rgba[p + static_cast<std::size_t>(c)];
    }
  }
  return out;
}

ImageTile composite_cluster(const core::Decomposition3& decomp,
                            const std::vector<ImageTile>& tiles,
                            int view_axis, bool positive) {
  GC_CHECK(static_cast<int>(tiles.size()) == decomp.num_nodes());
  GC_CHECK(view_axis >= 0 && view_axis < 3);

  // Depth order: nodes nearer the viewer composite in front.
  std::vector<int> order(tiles.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    order[k] = static_cast<int>(k);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int pa = decomp.block(a).lo[view_axis];
    const int pb = decomp.block(b).lo[view_axis];
    return positive ? pa > pb : pa < pb;
  });

  ImageTile acc = tiles[static_cast<std::size_t>(order[0])];
  for (std::size_t k = 1; k < order.size(); ++k) {
    acc = composite_over(acc, tiles[static_cast<std::size_t>(order[k])]);
  }
  return acc;
}

ImageTile render_density_tile(const core::Decomposition3& decomp, int node,
                              const std::vector<float>& density,
                              int view_axis, float opacity_scale) {
  GC_CHECK(view_axis >= 0 && view_axis < 3);
  const core::SubDomain& b = decomp.block(node);
  const Int3 size = b.size();
  GC_CHECK(static_cast<i64>(density.size()) == size.volume());

  // Screen axes: the two non-view axes, lower axis horizontal.
  const int ax_u = view_axis == 0 ? 1 : 0;
  const int ax_v = view_axis == 2 ? 1 : 2;
  const Int3 global = decomp.lattice_dim();
  ImageTile tile = ImageTile::blank(global[ax_u], global[ax_v]);

  for (int v = 0; v < size[ax_v]; ++v) {
    for (int u = 0; u < size[ax_u]; ++u) {
      // Accumulate opacity along the view axis through the sub-volume.
      float acc = 0.0f;
      for (int w = 0; w < size[view_axis]; ++w) {
        Int3 p;
        p[ax_u] = u;
        p[ax_v] = v;
        p[view_axis] = w;
        acc += density[static_cast<std::size_t>(
            p.x + i64(size.x) * (p.y + i64(size.y) * p.z))];
      }
      const float alpha =
          1.0f - std::exp(-opacity_scale * acc);
      const std::size_t px =
          (static_cast<std::size_t>(b.lo[ax_v] + v) * tile.width +
           static_cast<std::size_t>(b.lo[ax_u] + u)) *
          4;
      tile.rgba[px] = alpha;        // premultiplied white smoke
      tile.rgba[px + 1] = alpha;
      tile.rgba[px + 2] = alpha;
      tile.rgba[px + 3] = alpha;
    }
  }
  return tile;
}

double compositing_seconds(int nodes, int width, int height,
                           double link_Bps) {
  GC_CHECK(nodes >= 1 && width > 0 && height > 0 && link_Bps > 0);
  if (nodes == 1) return 0.0;
  const double frame_bytes = double(width) * height * 4.0;  // RGBA8 wire
  const double stages = std::ceil(std::log2(double(nodes)));
  return stages * frame_bytes / link_Bps;
}

}  // namespace gc::viz
