#include "viz/streamline.hpp"

#include <algorithm>
#include <cmath>

namespace gc::viz {

using lbm::CellType;

Vec3 sample_velocity(const lbm::Lattice& lat, const std::vector<Vec3>& u,
                     Vec3 p) {
  const Int3 d = lat.dim();
  const Real x = std::clamp(p.x, Real(0), Real(d.x - 1));
  const Real y = std::clamp(p.y, Real(0), Real(d.y - 1));
  const Real z = std::clamp(p.z, Real(0), Real(d.z - 1));
  const int x0 = std::min(static_cast<int>(x), d.x - 2 >= 0 ? d.x - 2 : 0);
  const int y0 = std::min(static_cast<int>(y), d.y - 2 >= 0 ? d.y - 2 : 0);
  const int z0 = std::min(static_cast<int>(z), d.z - 2 >= 0 ? d.z - 2 : 0);
  const Real fx = x - Real(x0);
  const Real fy = y - Real(y0);
  const Real fz = z - Real(z0);

  Vec3 acc{};
  for (int dz = 0; dz <= 1; ++dz) {
    for (int dy = 0; dy <= 1; ++dy) {
      for (int dx = 0; dx <= 1; ++dx) {
        const int cx = std::min(x0 + dx, d.x - 1);
        const int cy = std::min(y0 + dy, d.y - 1);
        const int cz = std::min(z0 + dz, d.z - 1);
        const Real w = (dx ? fx : Real(1) - fx) * (dy ? fy : Real(1) - fy) *
                       (dz ? fz : Real(1) - fz);
        const i64 cell = lat.idx(cx, cy, cz);
        if (lat.flag(cell) == CellType::Solid) continue;
        acc += u[static_cast<std::size_t>(cell)] * w;
      }
    }
  }
  return acc;
}

std::vector<Vec3> trace_streamline(const lbm::Lattice& lat,
                                   const std::vector<Vec3>& u, Vec3 seed,
                                   const StreamlineParams& params) {
  GC_CHECK(u.size() == static_cast<std::size_t>(lat.num_cells()));
  const Int3 d = lat.dim();
  std::vector<Vec3> line;
  Vec3 p = seed;

  auto in_domain = [&d](Vec3 q) {
    return q.x >= 0 && q.x <= Real(d.x - 1) && q.y >= 0 &&
           q.y <= Real(d.y - 1) && q.z >= 0 && q.z <= Real(d.z - 1);
  };

  for (int s = 0; s < params.max_steps && in_domain(p); ++s) {
    const Int3 cell{static_cast<int>(p.x), static_cast<int>(p.y),
                    static_cast<int>(p.z)};
    if (lat.flag(cell) == CellType::Solid) break;
    line.push_back(p);

    // RK2 midpoint step, normalized so each step advances ~step_size cells.
    const Vec3 v1 = sample_velocity(lat, u, p);
    const Real s1 = v1.norm();
    if (s1 < params.min_speed) break;
    const Vec3 mid = p + v1 * (params.step_size / s1 * Real(0.5));
    const Vec3 v2 = sample_velocity(lat, u, mid);
    const Real s2 = v2.norm();
    if (s2 < params.min_speed) break;
    p = p + v2 * (params.step_size / s2);
  }
  return line;
}

std::vector<std::vector<Vec3>> trace_streamlines(
    const lbm::Lattice& lat, const std::vector<Vec3>& u,
    const std::vector<Vec3>& seeds, const StreamlineParams& params) {
  std::vector<std::vector<Vec3>> lines;
  lines.reserve(seeds.size());
  for (const Vec3& seed : seeds) {
    lines.push_back(trace_streamline(lat, u, seed, params));
  }
  return lines;
}

}  // namespace gc::viz
