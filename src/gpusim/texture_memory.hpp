// On-board texture memory accounting (Section 2): the FX 5800 Ultra has
// 128 MB, of which the paper could use at most 86 MB for lattice data —
// capping a single GPU's sub-domain at 92^3. Allocations beyond the usable
// budget throw GpuOutOfMemory, which the decomposition planner catches to
// decide how many nodes a problem needs.
#pragma once

#include "util/common.hpp"

namespace gc::gpusim {

class GpuOutOfMemory : public Error {
 public:
  GpuOutOfMemory(i64 requested, i64 available)
      : Error("GPU texture memory exhausted: requested " +
              std::to_string(requested) + " bytes, " +
              std::to_string(available) + " available") {}
};

class TextureMemory {
 public:
  /// `total_bytes` is the physical memory; `usable_fraction` models the
  /// driver/framebuffer reservation the paper measured (86/128).
  TextureMemory(i64 total_bytes, double usable_fraction = 86.0 / 128.0);

  i64 total_bytes() const { return total_; }
  i64 usable_bytes() const { return usable_; }
  i64 allocated_bytes() const { return allocated_; }
  i64 available_bytes() const { return usable_ - allocated_; }

  /// Reserve `bytes`; throws GpuOutOfMemory when over budget.
  void allocate(i64 bytes);
  /// Release previously allocated bytes.
  void release(i64 bytes);

 private:
  i64 total_;
  i64 usable_;
  i64 allocated_ = 0;
};

}  // namespace gc::gpusim
