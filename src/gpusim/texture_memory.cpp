#include "gpusim/texture_memory.hpp"

namespace gc::gpusim {

TextureMemory::TextureMemory(i64 total_bytes, double usable_fraction)
    : total_(total_bytes),
      usable_(static_cast<i64>(static_cast<double>(total_bytes) * usable_fraction)) {
  GC_CHECK(total_bytes > 0);
  GC_CHECK(usable_fraction > 0.0 && usable_fraction <= 1.0);
}

void TextureMemory::allocate(i64 bytes) {
  GC_CHECK(bytes >= 0);
  if (allocated_ + bytes > usable_) {
    throw GpuOutOfMemory(bytes, available_bytes());
  }
  allocated_ += bytes;
}

void TextureMemory::release(i64 bytes) {
  GC_CHECK(bytes >= 0 && bytes <= allocated_);
  allocated_ -= bytes;
}

}  // namespace gc::gpusim
