#include "gpusim/bus.hpp"

namespace gc::gpusim {

BusSpec BusSpec::agp8x() {
  // Peak figures from Section 3; setup costs calibrated so the per-step
  // GPU<->CPU communication of Table 1 (13 ms with one neighbor, ~50 ms
  // with four) is reproduced: read-back initialization dominates.
  return BusSpec{"AGP 8x", 2.1e9, 133e6, 0.5e-3, 10.0e-3};
}

BusSpec BusSpec::pcie_x16() {
  return BusSpec{"PCI-Express x16", 4.0e9, 4.0e9, 0.2e-3, 0.5e-3};
}

double Bus::download_cost(i64 bytes) const {
  GC_CHECK(bytes >= 0);
  return spec_.down_setup_s + static_cast<double>(bytes) / spec_.down_Bps;
}

double Bus::upload_cost(i64 bytes) const {
  GC_CHECK(bytes >= 0);
  return spec_.up_setup_s + static_cast<double>(bytes) / spec_.up_Bps;
}

double Bus::download_seconds(i64 bytes) {
  const double t = download_cost(bytes);
  total_down_ += t;
  bytes_down_ += bytes;
  return t;
}

double Bus::upload_seconds(i64 bytes) {
  const double t = upload_cost(bytes);
  total_up_ += t;
  bytes_up_ += bytes;
  return t;
}

void Bus::reset_ledger() {
  total_down_ = total_up_ = 0.0;
  bytes_down_ = bytes_up_ = 0;
}

}  // namespace gc::gpusim
