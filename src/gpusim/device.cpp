#include "gpusim/device.hpp"

#include <algorithm>

namespace gc::gpusim {

GpuDevice::GpuDevice(GpuSpec spec, BusSpec bus)
    : perf_(spec),
      bus_(std::move(bus)),
      memory_(spec.texture_memory_bytes, spec.usable_fraction) {}

TextureId GpuDevice::create_texture(int width, int height) {
  Texture2D t(width, height);
  memory_.allocate(t.bytes());
  // Reuse a free slot if any, else append.
  for (std::size_t i = 0; i < textures_.size(); ++i) {
    if (!textures_[i]) {
      textures_[i] = std::move(t);
      return static_cast<TextureId>(i);
    }
  }
  textures_.push_back(std::move(t));
  return static_cast<TextureId>(textures_.size() - 1);
}

void GpuDevice::destroy_texture(TextureId id) {
  Texture2D& t = tex_checked(id);
  memory_.release(t.bytes());
  textures_[static_cast<std::size_t>(id)].reset();
}

Texture2D& GpuDevice::tex_checked(TextureId id) {
  GC_CHECK_MSG(id >= 0 && id < static_cast<TextureId>(textures_.size()) &&
                   textures_[static_cast<std::size_t>(id)],
               "invalid texture id " << id);
  return *textures_[static_cast<std::size_t>(id)];
}

Texture2D& GpuDevice::texture(TextureId id) { return tex_checked(id); }

const Texture2D& GpuDevice::texture(TextureId id) const {
  return const_cast<GpuDevice*>(this)->tex_checked(id);
}

void GpuDevice::upload(TextureId id, const std::vector<float>& rgba) {
  Texture2D& t = tex_checked(id);
  GC_CHECK_MSG(static_cast<i64>(rgba.size()) == t.num_texels() * 4,
               "upload size mismatch");
  std::copy(rgba.begin(), rgba.end(), t.data());
  ledger_.download_s += bus_.download_seconds(t.bytes());
}

std::vector<float> GpuDevice::readback(TextureId id) {
  Texture2D& t = tex_checked(id);
  std::vector<float> out(t.data(), t.data() + t.num_texels() * 4);
  ledger_.readback_s += bus_.upload_seconds(t.bytes());
  return out;
}

std::vector<float> GpuDevice::readback_rect(TextureId id, Rect rect) {
  Texture2D& t = tex_checked(id);
  GC_CHECK(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= t.width() &&
           rect.y1 <= t.height() && rect.x0 <= rect.x1 && rect.y0 <= rect.y1);
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(rect.num_fragments()) * 4);
  for (int y = rect.y0; y < rect.y1; ++y) {
    for (int x = rect.x0; x < rect.x1; ++x) {
      const RGBA v = t.fetch(x, y);
      out.push_back(v.r);
      out.push_back(v.g);
      out.push_back(v.b);
      out.push_back(v.a);
    }
  }
  ledger_.readback_s += bus_.upload_seconds(rect.num_fragments() * 16);
  return out;
}

double GpuDevice::render(const FragmentProgram& program, TextureId target,
                         Rect rect, const std::vector<TextureId>& bound,
                         const Uniforms& uniforms) {
  Texture2D& dst = tex_checked(target);
  GC_CHECK_MSG(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width() &&
                   rect.y1 <= dst.height() && rect.x0 <= rect.x1 &&
                   rect.y0 <= rect.y1,
               "render rect out of target bounds in pass " << program.name());

  std::vector<const Texture2D*> bound_ptrs;
  bound_ptrs.reserve(bound.size());
  for (TextureId id : bound) {
    GC_CHECK_MSG(id != target, "texture " << id
                                          << " bound for reading while being "
                                             "the render target (pass "
                                          << program.name() << ")");
    bound_ptrs.push_back(&tex_checked(id));
  }

  i64 fetches = 0;
  for (int y = rect.y0; y < rect.y1; ++y) {
    for (int x = rect.x0; x < rect.x1; ++x) {
      FragmentContext ctx(x, y, bound_ptrs, uniforms);
      const RGBA out = program.shade(ctx);
      dst.store(x, y, out);
      fetches += ctx.fetch_count();
    }
  }

  const i64 fragments = rect.num_fragments();
  const double t = perf_.pass_seconds(
      fragments, program.arithmetic_instructions(), fetches, fragments * 16);
  ledger_.compute_s += t;
  ledger_.passes += 1;
  ledger_.fragments += fragments;
  ledger_.tex_fetches += fetches;
  return t;
}

}  // namespace gc::gpusim
