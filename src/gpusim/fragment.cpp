#include "gpusim/fragment.hpp"

namespace gc::gpusim {

const std::array<float, 4>& Uniforms::get(const std::string& name) const {
  auto it = values_.find(name);
  GC_CHECK_MSG(it != values_.end(), "unbound uniform: " << name);
  return it->second;
}

}  // namespace gc::gpusim
