// The programmable fragment stage (Section 2): user-defined fragment
// programs run once per fragment of a render pass, may gather from any
// texel of any bound texture, and write one RGBA result. This is the
// only programmable stage the paper uses ("currently, most of the
// techniques ... take advantage of the programmable fragment processing
// stage"); scatter is impossible by construction — a program only returns
// the value of its own fragment.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "gpusim/texture.hpp"
#include "util/common.hpp"

namespace gc::gpusim {

/// Uniform parameters bound for a pass (Cg-style named float4 constants).
class Uniforms {
 public:
  void set(const std::string& name, float x, float y = 0, float z = 0,
           float w = 0) {
    values_[name] = {x, y, z, w};
  }
  const std::array<float, 4>& get(const std::string& name) const;
  bool has(const std::string& name) const { return values_.count(name) != 0; }

 private:
  std::map<std::string, std::array<float, 4>> values_;
};

/// Per-fragment execution context handed to FragmentProgram::shade.
/// Counts texture fetches for the performance model.
class FragmentContext {
 public:
  FragmentContext(int x, int y, const std::vector<const Texture2D*>& bound,
                  const Uniforms& uniforms)
      : x_(x), y_(y), bound_(bound), uniforms_(uniforms) {}

  /// Fragment coordinates in the render target.
  int x() const { return x_; }
  int y() const { return y_; }

  /// Gather: fetch any texel of any bound texture unit.
  RGBA fetch(int unit, int x, int y) {
    GC_CHECK(unit >= 0 && unit < static_cast<int>(bound_.size()));
    ++fetches_;
    return bound_[static_cast<std::size_t>(unit)]->fetch(x, y);
  }

  int num_bound() const { return static_cast<int>(bound_.size()); }
  const std::array<float, 4>& uniform(const std::string& name) const {
    return uniforms_.get(name);
  }

  i64 fetch_count() const { return fetches_; }

 private:
  int x_, y_;
  const std::vector<const Texture2D*>& bound_;
  const Uniforms& uniforms_;
  i64 fetches_ = 0;
};

/// A user fragment program (the Cg shader analog).
class FragmentProgram {
 public:
  virtual ~FragmentProgram() = default;

  /// Computes the RGBA output for the fragment described by ctx.
  virtual RGBA shade(FragmentContext& ctx) const = 0;

  /// Descriptive name (for pass traces and error messages).
  virtual std::string name() const = 0;

  /// Estimated vector arithmetic instructions per fragment, fed to the
  /// performance model alongside the exact fetch counts.
  virtual int arithmetic_instructions() const { return 8; }
};

}  // namespace gc::gpusim
