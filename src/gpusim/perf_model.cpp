#include "gpusim/perf_model.hpp"

#include <algorithm>

namespace gc::gpusim {

GpuSpec GpuSpec::geforce_fx5800_ultra() {
  GpuSpec s;
  s.name = "GeForce FX 5800 Ultra";
  s.pixel_pipes = 4;
  s.core_clock_hz = 500e6;
  s.flops_per_pipe_per_cycle = 8;  // 4-wide vector multiply-add
  s.tex_bandwidth_Bps = 16.0e9;    // 128-bit DDR2 @ 500 MHz
  s.texture_memory_bytes = i64(128) * 1024 * 1024;
  s.usable_fraction = 86.0 / 128.0;
  s.pass_overhead_s = 60e-6;
  s.efficiency = 0.30;  // calibrated: 80^3 D3Q19 step ~= 214 ms (Table 1)
  return s;
}

GpuSpec GpuSpec::geforce_fx5900_ultra() {
  GpuSpec s = geforce_fx5800_ultra();
  s.name = "GeForce FX 5900 Ultra";
  s.core_clock_hz = 450e6;
  s.tex_bandwidth_Bps = 27.2e9;  // 256-bit bus
  s.texture_memory_bytes = i64(256) * 1024 * 1024;
  // The Section 4.2 predecessor port (Li et al.) predates the cluster
  // code's optimizations; its achieved fraction of peak was lower —
  // calibrated to the paper's "about 8 times a P4 2.53 GHz" claim.
  s.efficiency = 0.18;
  return s;
}

GpuSpec GpuSpec::geforce_6800_ultra() {
  GpuSpec s;
  s.name = "GeForce 6800 Ultra";
  s.pixel_pipes = 16;
  s.core_clock_hz = 400e6;
  s.flops_per_pipe_per_cycle = 8;  // ~40 GFlops observed (Section 1)
  s.tex_bandwidth_Bps = 35.2e9;    // Section 1
  s.texture_memory_bytes = i64(256) * 1024 * 1024;
  s.usable_fraction = 86.0 / 128.0;
  s.pass_overhead_s = 40e-6;
  s.efficiency = 0.30;
  return s;
}

GpuSpec GpuSpec::geforce_fx5800_ultra_256mb() {
  GpuSpec s = geforce_fx5800_ultra();
  s.name = "GeForce FX 5800 Ultra (256 MB)";
  s.texture_memory_bytes = i64(256) * 1024 * 1024;
  return s;
}

double GpuPerfModel::pass_seconds(i64 fragments, int arith_instructions,
                                  i64 tex_fetches, i64 bytes_written) const {
  GC_CHECK(fragments >= 0 && arith_instructions >= 0 && tex_fetches >= 0 &&
           bytes_written >= 0);
  const double flops = static_cast<double>(fragments) * arith_instructions *
                       4.0;  // vector instruction = 4 scalar flops
  const double compute_s =
      flops / (spec_.peak_gflops() * 1e9 * spec_.efficiency);
  // Texture fetch traffic (16 B/texel) + pbuffer write + copy-to-texture
  // (write + read + write: the Section 2 step-3 copy doubles the traffic).
  const double bytes =
      static_cast<double>(tex_fetches) * 16.0 + 3.0 * bytes_written;
  const double memory_s = bytes / (spec_.tex_bandwidth_Bps * spec_.efficiency);
  return spec_.pass_overhead_s + std::max(compute_s, memory_s);
}

}  // namespace gc::gpusim
