// Host<->GPU bus model (Section 3): AGP 8x is asymmetric — 2.1 GB/s
// downstream (host to GPU) but only 133 MB/s upstream (GPU read-back),
// which is why the paper gathers border data on-GPU and reads it back in
// a single operation. The PCI-Express profile models the projected
// 4 GB/s symmetric bus of late 2004.
#pragma once

#include <string>

#include "util/common.hpp"

namespace gc::gpusim {

struct BusSpec {
  std::string name;
  double down_Bps;     ///< host -> GPU bandwidth (bytes/s)
  double up_Bps;       ///< GPU -> host bandwidth (bytes/s)
  double down_setup_s; ///< fixed cost to initiate a host->GPU transfer
  double up_setup_s;   ///< fixed cost to initiate a read-back (driver sync,
                       ///< pipeline flush — the dominant term on AGP)

  static BusSpec agp8x();
  static BusSpec pcie_x16();
};

/// Accumulates simulated transfer time over a bus.
class Bus {
 public:
  explicit Bus(BusSpec spec) : spec_(std::move(spec)) {}

  const BusSpec& spec() const { return spec_; }

  /// Time to move `bytes` host -> GPU; accumulates into the ledger.
  double download_seconds(i64 bytes);
  /// Time to move `bytes` GPU -> host; accumulates into the ledger.
  double upload_seconds(i64 bytes);

  /// Pure cost queries (no ledger side effect).
  double download_cost(i64 bytes) const;
  double upload_cost(i64 bytes) const;

  double total_download_seconds() const { return total_down_; }
  double total_upload_seconds() const { return total_up_; }
  i64 total_download_bytes() const { return bytes_down_; }
  i64 total_upload_bytes() const { return bytes_up_; }
  void reset_ledger();

 private:
  BusSpec spec_;
  double total_down_ = 0.0;
  double total_up_ = 0.0;
  i64 bytes_down_ = 0;
  i64 bytes_up_ = 0;
};

}  // namespace gc::gpusim
