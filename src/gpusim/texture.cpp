#include "gpusim/texture.hpp"

#include <algorithm>

namespace gc::gpusim {

Texture2D::Texture2D(int width, int height) : w_(width), h_(height) {
  GC_CHECK_MSG(width > 0 && height > 0,
               "texture dimensions must be positive: " << width << "x" << height);
  texels_.assign(static_cast<std::size_t>(num_texels()) * 4, 0.0f);
}

RGBA Texture2D::fetch(int x, int y) const {
  x = std::clamp(x, 0, w_ - 1);
  y = std::clamp(y, 0, h_ - 1);
  const std::size_t o = (static_cast<std::size_t>(y) * w_ + x) * 4;
  return RGBA{texels_[o], texels_[o + 1], texels_[o + 2], texels_[o + 3]};
}

void Texture2D::store(int x, int y, const RGBA& v) {
  GC_CHECK(x >= 0 && x < w_ && y >= 0 && y < h_);
  const std::size_t o = (static_cast<std::size_t>(y) * w_ + x) * 4;
  texels_[o] = v.r;
  texels_[o + 1] = v.g;
  texels_[o + 2] = v.b;
  texels_[o + 3] = v.a;
}

void Texture2D::fill(const RGBA& v) {
  for (std::size_t o = 0; o < texels_.size(); o += 4) {
    texels_[o] = v.r;
    texels_[o + 1] = v.g;
    texels_[o + 2] = v.b;
    texels_[o + 3] = v.a;
  }
}

TextureStack::TextureStack(int width, int height, int slices)
    : w_(width), h_(height) {
  GC_CHECK(slices > 0);
  slices_.reserve(static_cast<std::size_t>(slices));
  for (int z = 0; z < slices; ++z) slices_.emplace_back(width, height);
}

i64 TextureStack::bytes() const {
  return slices_.empty() ? 0 : slices_[0].bytes() * slices();
}

Texture2D& TextureStack::slice(int z) {
  GC_CHECK(z >= 0 && z < slices());
  return slices_[static_cast<std::size_t>(z)];
}

const Texture2D& TextureStack::slice(int z) const {
  GC_CHECK(z >= 0 && z < slices());
  return slices_[static_cast<std::size_t>(z)];
}

RGBA TextureStack::fetch(int x, int y, int z) const {
  z = std::clamp(z, 0, slices() - 1);
  return slices_[static_cast<std::size_t>(z)].fetch(x, y);
}

void TextureStack::store(int x, int y, int z, const RGBA& v) {
  GC_CHECK(z >= 0 && z < slices());
  slices_[static_cast<std::size_t>(z)].store(x, y, v);
}

}  // namespace gc::gpusim
