// The simulated GPU device: texture registry, render passes into pixel
// buffers, copy-to-texture, and host transfers over a Bus. Functionally
// exact (programs really execute, texel by texel); timing comes from the
// GpuPerfModel and is accumulated in a ledger the cluster simulator reads.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "gpusim/bus.hpp"
#include "gpusim/fragment.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/texture.hpp"
#include "gpusim/texture_memory.hpp"

namespace gc::gpusim {

using TextureId = int;

/// Target rectangle of a render pass (half-open, in texel coordinates) —
/// the paper covers boundary regions with "multiple small rectangles".
struct Rect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  i64 num_fragments() const { return i64(x1 - x0) * i64(y1 - y0); }
};

/// Accumulated simulated time, by category.
struct GpuTimeLedger {
  double compute_s = 0.0;   ///< render passes
  double download_s = 0.0;  ///< host -> GPU
  double readback_s = 0.0;  ///< GPU -> host
  i64 passes = 0;
  i64 fragments = 0;
  i64 tex_fetches = 0;
  double total_s() const { return compute_s + download_s + readback_s; }
};

class GpuDevice {
 public:
  GpuDevice(GpuSpec spec, BusSpec bus);

  const GpuSpec& spec() const { return perf_.spec(); }
  Bus& bus() { return bus_; }
  TextureMemory& memory() { return memory_; }
  const GpuTimeLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = GpuTimeLedger{}; }

  // --- texture management ---
  TextureId create_texture(int width, int height);
  void destroy_texture(TextureId id);
  Texture2D& texture(TextureId id);
  const Texture2D& texture(TextureId id) const;

  // --- host transfers (simulated bus time is charged) ---
  /// Host -> GPU: replaces the full contents of a texture.
  void upload(TextureId id, const std::vector<float>& rgba);
  /// GPU -> host: reads the full texture (glGetTexImage analog).
  std::vector<float> readback(TextureId id);

  /// GPU -> host for a sub-rectangle (glReadPixels analog). Charges the
  /// same per-read setup, which is why reading many small rectangles
  /// loses to one gathered read (Section 4.3).
  std::vector<float> readback_rect(TextureId id, Rect rect);

  // --- render passes ---
  /// Executes `program` for every fragment in `rect`, writing results into
  /// `target`. A texture bound for reading must not be the target (the
  /// pbuffer rule; violating it throws). Returns the pass's simulated time.
  double render(const FragmentProgram& program, TextureId target, Rect rect,
                const std::vector<TextureId>& bound, const Uniforms& uniforms);

 private:
  Texture2D& tex_checked(TextureId id);

  GpuPerfModel perf_;
  Bus bus_;
  TextureMemory memory_;
  std::vector<std::optional<Texture2D>> textures_;
  GpuTimeLedger ledger_;
};

}  // namespace gc::gpusim
