// GPU specifications and the per-pass timing model. The functional
// simulator executes fragment programs exactly; this model answers "how
// long would that pass have taken on the real card" — the number the
// cluster simulator feeds into Table 1.
#pragma once

#include <string>

#include "util/common.hpp"

namespace gc::gpusim {

struct GpuSpec {
  std::string name;
  int pixel_pipes;               ///< parallel fragment processors
  double core_clock_hz;
  int flops_per_pipe_per_cycle;  ///< 4-wide vector MAD = 8 flops
  double tex_bandwidth_Bps;      ///< on-board texture memory bandwidth
  i64 texture_memory_bytes;
  double usable_fraction;        ///< fraction of memory usable for data
  double pass_overhead_s;        ///< per-render-pass fixed cost (state
                                 ///< change, pbuffer bind, copy-to-texture
                                 ///< setup) — dominates small passes
  double efficiency;             ///< achieved fraction of theoretical peak
                                 ///< for real shaders (driver + pipeline
                                 ///< bubbles); calibrated on the paper's
                                 ///< measured 214 ms/step at 80^3

  double peak_gflops() const {
    return pixel_pipes * core_clock_hz * flops_per_pipe_per_cycle / 1e9;
  }

  /// The card in the paper's cluster ($399, April 2003): 16 GFlops peak
  /// fragment throughput, 128 MB with 86 MB usable.
  static GpuSpec geforce_fx5800_ultra();
  /// The card of the single-GPU predecessor work (Section 4.2).
  static GpuSpec geforce_fx5900_ultra();
  /// The 40-GFlops card the paper cites as "at least 2.5x faster".
  static GpuSpec geforce_6800_ultra();
  /// 256 MB variant used in the "larger sub-domain" projection.
  static GpuSpec geforce_fx5800_ultra_256mb();
};

class GpuPerfModel {
 public:
  explicit GpuPerfModel(GpuSpec spec) : spec_(std::move(spec)) {}

  const GpuSpec& spec() const { return spec_; }

  /// Simulated duration of one render pass shading `fragments` fragments,
  /// each executing `arith_instructions` vector instructions and issuing
  /// `tex_fetches` texture fetches, then writing `bytes_written` (pbuffer
  /// write + copy-to-texture for reuse, Section 2 step 3).
  double pass_seconds(i64 fragments, int arith_instructions, i64 tex_fetches,
                      i64 bytes_written) const;

 private:
  GpuSpec spec_;
};

}  // namespace gc::gpusim
