// RGBA float textures — the GPU-resident data containers of Section 2:
// "the data are laid out as texel colors in textures". A TextureStack is
// the paper's "stack of 2D textures" representing a volume (Figure 5).
#pragma once

#include <vector>

#include "util/common.hpp"

namespace gc::gpusim {

/// One texel: four 32-bit float channels (the FX 5800's fp32 path).
struct RGBA {
  float r = 0, g = 0, b = 0, a = 0;

  float& operator[](int c) { return c == 0 ? r : (c == 1 ? g : (c == 2 ? b : a)); }
  float operator[](int c) const { return c == 0 ? r : (c == 1 ? g : (c == 2 ? b : a)); }

  friend bool operator==(const RGBA& x, const RGBA& y) {
    return x.r == y.r && x.g == y.g && x.b == y.b && x.a == y.a;
  }
};

/// A 2D texture of RGBA float texels with clamp-to-edge addressing.
class Texture2D {
 public:
  Texture2D(int width, int height);

  int width() const { return w_; }
  int height() const { return h_; }
  i64 num_texels() const { return i64(w_) * h_; }
  i64 bytes() const { return num_texels() * 16; }  // 4 channels x fp32

  /// Texel fetch with clamp-to-edge (out-of-range coords are clamped).
  RGBA fetch(int x, int y) const;

  void store(int x, int y, const RGBA& v);

  /// Direct access for uploads/readbacks (row-major, 4 floats per texel).
  float* data() { return texels_.data(); }
  const float* data() const { return texels_.data(); }

  void fill(const RGBA& v);

 private:
  int w_, h_;
  std::vector<float> texels_;
};

/// A stack of same-sized 2D textures representing a 3D volume (one slice
/// per z). Figure 5: four scalar volumes pack into one stack's channels.
class TextureStack {
 public:
  TextureStack(int width, int height, int slices);

  int width() const { return w_; }
  int height() const { return h_; }
  int slices() const { return static_cast<int>(slices_.size()); }
  i64 bytes() const;

  Texture2D& slice(int z);
  const Texture2D& slice(int z) const;

  /// Clamp-addressed volume fetch.
  RGBA fetch(int x, int y, int z) const;
  void store(int x, int y, int z, const RGBA& v);

 private:
  int w_, h_;
  std::vector<Texture2D> slices_;
};

}  // namespace gc::gpusim
