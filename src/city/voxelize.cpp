#include "city/voxelize.hpp"

#include <algorithm>
#include <cmath>

namespace gc::city {

i64 voxelize(const CityModel& model, lbm::Lattice& lat,
             const VoxelizeParams& params) {
  GC_CHECK(params.meters_per_cell > Real(0));
  const Int3 d = lat.dim();
  i64 marked = 0;
  const Real m = params.meters_per_cell;

  for (const Building& b : model.buildings()) {
    const int x0 = std::max(0, params.origin_cells.x +
                                   static_cast<int>(std::floor(b.x0 / m)));
    const int x1 = std::min(d.x - 1, params.origin_cells.x +
                                         static_cast<int>(std::ceil(b.x1 / m)));
    const int y0 = std::max(0, params.origin_cells.y +
                                   static_cast<int>(std::floor(b.y0 / m)));
    const int y1 = std::min(d.y - 1, params.origin_cells.y +
                                         static_cast<int>(std::ceil(b.y1 / m)));
    const int z1 = std::min(
        d.z - 1, params.origin_cells.z +
                     static_cast<int>(std::ceil(b.height / m)));
    for (int z = params.origin_cells.z; z <= z1; ++z) {
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          const i64 cell = lat.idx(x, y, z);
          if (lat.flag(cell) != lbm::CellType::Solid) {
            lat.set_flag(cell, lbm::CellType::Solid);
            ++marked;
          }
        }
      }
    }
  }
  return marked;
}

}  // namespace gc::city
