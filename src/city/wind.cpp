#include "city/wind.hpp"

#include <cmath>

namespace gc::city {

using lbm::Face;
using lbm::FaceBc;

WindScenario WindScenario::northeasterly(Real speed_lattice) {
  WindScenario w;
  const Real c = Real(0.7071067811865476);  // 45 degrees
  w.velocity = Vec3{-c * speed_lattice, -c * speed_lattice, 0};
  return w;
}

Real WindScenario::height_factor(int z, int height) const {
  if (profile_exponent <= Real(0)) return Real(1);
  const Real h = (Real(z) + Real(0.5)) / Real(height);
  return std::pow(h, profile_exponent);
}

void apply_wind_boundaries(lbm::Lattice& lat, const WindScenario& wind) {
  GC_CHECK_MSG(wind.velocity.norm() < Real(0.3),
               "wind speed too close to the lattice advection limit: "
                   << wind.velocity.norm());

  auto set_axis = [&lat](int axis, Real u) {
    const auto lo = static_cast<Face>(2 * axis);
    const auto hi = static_cast<Face>(2 * axis + 1);
    if (u > 0) {
      lat.set_face_bc(lo, FaceBc::Inlet);
      lat.set_face_bc(hi, FaceBc::Outflow);
    } else if (u < 0) {
      lat.set_face_bc(hi, FaceBc::Inlet);
      lat.set_face_bc(lo, FaceBc::Outflow);
    } else {
      lat.set_face_bc(lo, FaceBc::FreeSlip);
      lat.set_face_bc(hi, FaceBc::FreeSlip);
    }
  };
  set_axis(0, wind.velocity.x);
  set_axis(1, wind.velocity.y);

  lat.set_face_bc(lbm::FACE_ZMIN, FaceBc::Wall);      // ground
  lat.set_face_bc(lbm::FACE_ZMAX, FaceBc::FreeSlip);  // open sky

  lat.set_inlet(Real(1), wind.velocity);
  if (wind.profile_exponent > Real(0)) {
    const int height = lat.dim().z;
    lat.set_inlet_profile([wind, height](Int3 cell) {
      return wind.velocity * wind.height_factor(cell.z, height);
    });
  }
}

}  // namespace gc::city
