#include "city/city_model.hpp"

#include <algorithm>
#include <cmath>

namespace gc::city {

CityModel::CityModel(CityParams params) : params_(params) {
  GC_CHECK(params.avenues >= 2 && params.streets >= 2);
  Rng rng(params.seed);

  const int cols = params.avenues - 1;
  const int rows = params.streets - 1;
  num_blocks_ = cols * rows;

  // Corridor center positions, evenly spaced.
  auto corridor = [](Real extent, int count, int k) {
    return extent * Real(k) / Real(count - 1);
  };

  const Real cx = params.extent_x_m / 2;
  const Real cy = params.extent_y_m / 2;
  const Real diag = std::sqrt(cx * cx + cy * cy);

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Block interior between corridors c..c+1 and r..r+1.
      const Real bx0 = corridor(params.extent_x_m, params.avenues, c) +
                       params.avenue_width_m / 2;
      const Real bx1 = corridor(params.extent_x_m, params.avenues, c + 1) -
                       params.avenue_width_m / 2;
      const Real by0 = corridor(params.extent_y_m, params.streets, r) +
                       params.street_width_m / 2;
      const Real by1 = corridor(params.extent_y_m, params.streets, r + 1) -
                       params.street_width_m / 2;
      if (bx1 <= bx0 || by1 <= by0) continue;

      // Subdivide the block into lots (2-4 x 2-3), most of them built.
      const int nx = static_cast<int>(rng.uniform_int(2, 4));
      const int ny = static_cast<int>(rng.uniform_int(2, 3));
      for (int ly = 0; ly < ny; ++ly) {
        for (int lx = 0; lx < nx; ++lx) {
          if (rng.chance(0.08)) continue;  // vacant lot / plaza
          const Real lx0 = bx0 + (bx1 - bx0) * Real(lx) / Real(nx);
          const Real lx1 = bx0 + (bx1 - bx0) * Real(lx + 1) / Real(nx);
          const Real ly0 = by0 + (by1 - by0) * Real(ly) / Real(ny);
          const Real ly1 = by0 + (by1 - by0) * Real(ly + 1) / Real(ny);
          const Real inset_x = (lx1 - lx0) * (1 - params.lot_coverage) / 2;
          const Real inset_y = (ly1 - ly0) * (1 - params.lot_coverage) / 2;

          Building b;
          b.x0 = lx0 + inset_x;
          b.x1 = lx1 - inset_x;
          b.y0 = ly0 + inset_y;
          b.y1 = ly1 - inset_y;

          // Heights: log-normal-ish base, with landmark towers biased
          // toward the center of the district.
          const Real mx = (b.x0 + b.x1) / 2 - cx;
          const Real my = (b.y0 + b.y1) / 2 - cy;
          const Real center_bias =
              Real(1) - std::sqrt(mx * mx + my * my) / diag;
          Real h = params.mean_height_m *
                   Real(std::exp(0.5 * rng.normal()));
          if (rng.chance(params.tall_fraction * (0.5 + center_bias))) {
            h = params.tall_height_m * Real(rng.uniform(0.7, 1.3));
          }
          b.height = std::clamp(h, Real(8), Real(300));
          buildings_.push_back(b);
        }
      }
    }
  }
}

Real CityModel::max_height() const {
  Real m = 0;
  for (const Building& b : buildings_) m = std::max(m, b.height);
  return m;
}

bool CityModel::inside(Real x, Real y, Real z) const {
  if (z < 0) return false;
  for (const Building& b : buildings_) {
    if (x >= b.x0 && x <= b.x1 && y >= b.y0 && y <= b.y1 && z <= b.height) {
      return true;
    }
  }
  return false;
}

}  // namespace gc::city
