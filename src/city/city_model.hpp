// Procedural Manhattan-style urban model standing in for the paper's
// Times Square polygonal mesh (Section 5): a street/avenue grid forming
// ~91 blocks with ~850 buildings, extents ~1.66 km x 1.13 km. The
// generator is fully seeded, so every run (and test) sees the same city.
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace gc::city {

/// An axis-aligned building footprint (meters) with a flat roof.
struct Building {
  Real x0, y0, x1, y1;  ///< footprint, x east, y north
  Real height;          ///< meters
};

struct CityParams {
  Real extent_x_m = Real(1660);  ///< ~1.66 km (Section 5)
  Real extent_y_m = Real(1130);  ///< ~1.13 km
  int avenues = 8;               ///< N-S corridors -> 7 block columns
  int streets = 14;              ///< E-W corridors -> 13 block rows
  Real avenue_width_m = Real(30);
  Real street_width_m = Real(18);
  Real lot_coverage = Real(0.85);    ///< built fraction of each lot
  Real mean_height_m = Real(40);
  Real tall_height_m = Real(180);    ///< landmark towers near the center
  Real tall_fraction = Real(0.06);
  u64 seed = 2004;
};

class CityModel {
 public:
  explicit CityModel(CityParams params = CityParams{});

  const CityParams& params() const { return params_; }
  const std::vector<Building>& buildings() const { return buildings_; }
  int num_blocks() const { return num_blocks_; }

  Real max_height() const;

  /// True if the point (x, y, z) in meters lies inside any building.
  bool inside(Real x, Real y, Real z) const;

 private:
  CityParams params_;
  std::vector<Building> buildings_;
  int num_blocks_ = 0;
};

}  // namespace gc::city
