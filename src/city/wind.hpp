// Wind boundary conditions for the urban dispersion scenario (Section 5):
// a velocity (equilibrium) inflow on the upwind faces, outflow downwind,
// free-slip at the domain top, no-slip ground.
#pragma once

#include "lbm/lattice.hpp"

namespace gc::city {

struct WindScenario {
  Vec3 velocity{};  ///< lattice units; |u| should stay << 0.577

  /// Power-law atmospheric boundary layer: the inflow speed scales as
  /// ((z + 1/2) / H)^alpha with domain height H. 0 disables the profile
  /// (uniform inflow). ~0.25 is typical over dense urban terrain.
  Real profile_exponent = Real(0);

  /// Section 5's northeasterly wind: blowing from the north-east, i.e.
  /// toward -x and -y in our east/north coordinates.
  static WindScenario northeasterly(Real speed_lattice);

  /// Wind speed factor at height z (cells) in a domain of height H.
  Real height_factor(int z, int height) const;
};

/// Configures the lattice faces for the wind: faces the wind enters
/// through become Inlet, their opposites Outflow, the top FreeSlip, the
/// ground Wall; crosswind faces (zero velocity component) become FreeSlip.
void apply_wind_boundaries(lbm::Lattice& lat, const WindScenario& wind);

}  // namespace gc::city
