// Rasterization of the city model onto the LBM lattice (Section 5: the
// urban model occupies a 440x300 ground area of the 480x400x80 lattice at
// 3.8 m spacing). Buildings become Solid cells; the remaining boundary
// setup (wind in/outflow, slip top, ground) comes from city/wind.
#pragma once

#include "city/city_model.hpp"
#include "lbm/lattice.hpp"

namespace gc::city {

struct VoxelizeParams {
  Real meters_per_cell = Real(3.8);  ///< the paper's resolution
  /// Offset of the city's (0,0) corner on the lattice, in cells — the
  /// paper leaves free-flow margins around the rotated urban model.
  Int3 origin_cells{20, 50, 0};
};

/// Marks Solid cells for every building; returns the number of cells
/// marked. Cells outside the lattice are ignored (clipped).
i64 voxelize(const CityModel& model, lbm::Lattice& lat,
             const VoxelizeParams& params = VoxelizeParams{});

}  // namespace gc::city
