#include "io/vtk_writer.hpp"

#include <fstream>

namespace gc::io {

namespace {
std::ofstream open_checked(const std::string& path) {
  std::ofstream out(path);
  GC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  return out;
}

void write_structured_header(std::ofstream& out, Int3 dim, i64 n) {
  out << "# vtk DataFile Version 3.0\n"
      << "gpucluster field\n"
      << "ASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << dim.x << " " << dim.y << " " << dim.z << "\n"
      << "ORIGIN 0 0 0\n"
      << "SPACING 1 1 1\n"
      << "POINT_DATA " << n << "\n";
}
}  // namespace

void write_vtk_scalar(const std::string& path, Int3 dim,
                      const std::vector<float>& data,
                      const std::string& field_name) {
  const i64 n = dim.volume();
  GC_CHECK(static_cast<i64>(data.size()) == n);
  std::ofstream out = open_checked(path);
  write_structured_header(out, dim, n);
  out << "SCALARS " << field_name << " float 1\nLOOKUP_TABLE default\n";
  for (i64 i = 0; i < n; ++i) {
    out << data[static_cast<std::size_t>(i)] << "\n";
  }
}

void write_vtk_vector(const std::string& path, Int3 dim,
                      const std::vector<Vec3>& data,
                      const std::string& field_name) {
  const i64 n = dim.volume();
  GC_CHECK(static_cast<i64>(data.size()) == n);
  std::ofstream out = open_checked(path);
  write_structured_header(out, dim, n);
  out << "VECTORS " << field_name << " float\n";
  for (i64 i = 0; i < n; ++i) {
    const Vec3& v = data[static_cast<std::size_t>(i)];
    out << v.x << " " << v.y << " " << v.z << "\n";
  }
}

void write_vtk_polylines(const std::string& path,
                         const std::vector<std::vector<Vec3>>& lines) {
  std::ofstream out = open_checked(path);
  i64 total_points = 0;
  for (const auto& line : lines) total_points += static_cast<i64>(line.size());

  out << "# vtk DataFile Version 3.0\n"
      << "gpucluster streamlines\n"
      << "ASCII\n"
      << "DATASET POLYDATA\n"
      << "POINTS " << total_points << " float\n";
  for (const auto& line : lines) {
    for (const Vec3& p : line) out << p.x << " " << p.y << " " << p.z << "\n";
  }
  i64 size_entries = 0;
  for (const auto& line : lines) {
    size_entries += 1 + static_cast<i64>(line.size());
  }
  out << "LINES " << lines.size() << " " << size_entries << "\n";
  i64 offset = 0;
  for (const auto& line : lines) {
    out << line.size();
    for (std::size_t k = 0; k < line.size(); ++k) out << " " << offset + static_cast<i64>(k);
    out << "\n";
    offset += static_cast<i64>(line.size());
  }
}

}  // namespace gc::io
