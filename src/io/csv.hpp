// CSV persistence for benchmark tables.
#pragma once

#include <string>

#include "util/table.hpp"

namespace gc::io {

/// Writes a Table to disk as CSV.
void write_csv(const std::string& path, const Table& table);

}  // namespace gc::io
