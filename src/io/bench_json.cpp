#include "io/bench_json.hpp"

#include <fstream>

namespace gc::io {

const char* storage_mode_name(lbm::StorageMode mode) {
  switch (mode) {
    case lbm::StorageMode::AA: return "aa";
    case lbm::StorageMode::Sparse: return "sparse";
    case lbm::StorageMode::DoubleBuffer: break;
  }
  return "double_buffer";
}

double split_step_traffic_bytes(const lbm::Lattice& lat) {
  const double plane_set =
      static_cast<double>(lbm::Q) * static_cast<double>(lat.num_cells()) *
      sizeof(Real);
  if (lat.storage_mode() == lbm::StorageMode::DoubleBuffer) {
    // collide: read + write every plane; stream: read front, write back.
    return 4.0 * plane_set;
  }
  if (lat.storage_mode() == lbm::StorageMode::Sparse) {
    // The dense pattern shrunk to the active cells: solid cells have no
    // storage, so neither pass ever touches them.
    return 4.0 * static_cast<double>(lbm::Q) *
           static_cast<double>(lat.sparse_active_cells()) * sizeof(Real);
  }
  // AA: the advancing collide reads + writes every plane in place; the
  // stream is a parity flip plus per-slow-cell fixups (gather + scatter).
  const double fixups =
      2.0 * static_cast<double>(lbm::Q) *
      static_cast<double>(lat.cell_class().slow.size()) * sizeof(Real);
  return 2.0 * plane_set + fixups;
}

double fused_step_traffic_bytes(const lbm::Lattice& lat) {
  const double plane_set =
      static_cast<double>(lbm::Q) * static_cast<double>(lat.num_cells()) *
      sizeof(Real);
  if (lat.storage_mode() == lbm::StorageMode::DoubleBuffer) {
    return 2.0 * plane_set;
  }
  if (lat.storage_mode() == lbm::StorageMode::Sparse) {
    return 2.0 * static_cast<double>(lbm::Q) *
           static_cast<double>(lat.sparse_active_cells()) * sizeof(Real);
  }
  const double fixups =
      2.0 * static_cast<double>(lbm::Q) *
      static_cast<double>(lat.cell_class().slow.size()) * sizeof(Real);
  return 2.0 * plane_set + fixups;
}

void write_bench_json(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  GC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "[\n";
  for (std::size_t k = 0; k < records.size(); ++k) {
    const BenchRecord& r = records[k];
    out << "  {\n"
        << "    \"name\": \"" << r.name << "\",\n"
        << "    \"storage\": \"" << io::storage_mode_name(r.storage) << "\",\n"
        << "    \"dim\": [" << r.dim.x << ", " << r.dim.y << ", " << r.dim.z
        << "],\n"
        << "    \"ms_per_step\": " << r.ms_per_step << ",\n"
        << "    \"mlups\": " << r.mlups << ",\n"
        << "    \"bytes_per_step\": " << r.bytes_per_step << ",\n"
        << "    \"storage_bytes\": " << r.storage_bytes;
    for (const auto& extra : r.extras) {
      out << ",\n    \"" << extra.first << "\": " << extra.second;
    }
    out << "\n  }" << (k + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  GC_CHECK_MSG(out.good(), "write failure on " << path);
}

}  // namespace gc::io
