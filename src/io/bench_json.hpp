// Machine-readable benchmark reports. The interactive benches print
// tables for humans; `--json out.json` additionally writes one record per
// measured configuration so perf runs can be diffed across commits (the
// BENCH_kernels.json snapshot at the repo root is produced this way).
//
// bytes_per_step is the analytic main-memory distribution traffic of the
// timed hot loop (reads + writes of the f-planes), not a hardware
// counter: it is what the storage mode determines, and the quantity the
// AA-pattern layout halves.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lbm/lattice.hpp"

namespace gc::io {

/// One measured benchmark configuration.
struct BenchRecord {
  std::string name;            ///< e.g. "split_collide_stream"
  lbm::StorageMode storage = lbm::StorageMode::DoubleBuffer;
  Int3 dim{};                  ///< lattice dimensions
  double ms_per_step = 0.0;    ///< mean wall-clock per LBM step
  double mlups = 0.0;          ///< million lattice-cell updates per second
  double bytes_per_step = 0.0; ///< analytic f-plane traffic per step
  double storage_bytes = 0.0;  ///< resident distribution storage
  /// Bench-specific scalar metrics appended verbatim to the record
  /// (e.g. bench_scenarios' "scenarios_per_hour", "speedup_vs_cold").
  std::vector<std::pair<std::string, double>> extras;
};

/// "aa" / "double_buffer" — the spelling used in the JSON reports.
const char* storage_mode_name(lbm::StorageMode mode);

/// Analytic f-plane main-memory traffic of one step of the split
/// collide+stream path (collide reads+writes every plane; DB streaming
/// reads the front and writes the back buffer, AA streams in place via
/// the parity flip, touching only the O(surface) fixup cells).
double split_step_traffic_bytes(const lbm::Lattice& lat);

/// Same for the fused stream+collide path (one read + one write of every
/// plane in both modes; AA halves the footprint, not the fused traffic).
double fused_step_traffic_bytes(const lbm::Lattice& lat);

/// Writes `records` as a JSON array of objects with the fields above.
void write_bench_json(const std::string& path,
                      const std::vector<BenchRecord>& records);

}  // namespace gc::io
