#include "io/ppm_writer.hpp"

#include <algorithm>
#include <fstream>

namespace gc::io {

void write_ppm_slice(const std::string& path, Int3 dim,
                     const std::vector<float>& data, int z, float lo,
                     float hi) {
  GC_CHECK(static_cast<i64>(data.size()) == dim.volume());
  GC_CHECK(z >= 0 && z < dim.z);
  const std::size_t base =
      static_cast<std::size_t>(z) * dim.x * static_cast<std::size_t>(dim.y);

  if (lo == hi) {
    lo = hi = data[base];
    for (i64 i = 0; i < i64(dim.x) * dim.y; ++i) {
      lo = std::min(lo, data[base + static_cast<std::size_t>(i)]);
      hi = std::max(hi, data[base + static_cast<std::size_t>(i)]);
    }
    if (lo == hi) hi = lo + 1.0f;
  }

  std::ofstream out(path, std::ios::binary);
  GC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "P6\n" << dim.x << " " << dim.y << "\n255\n";
  for (int y = dim.y - 1; y >= 0; --y) {  // north up
    for (int x = 0; x < dim.x; ++x) {
      const float v = data[base + static_cast<std::size_t>(y) * dim.x + x];
      float t = (v - lo) / (hi - lo);
      t = std::clamp(t, 0.0f, 1.0f);
      // Diverging blue -> white -> red.
      u8 r, g, b;
      if (t < 0.5f) {
        const float s = t * 2.0f;
        r = static_cast<u8>(255 * s);
        g = static_cast<u8>(255 * s);
        b = 255;
      } else {
        const float s = (t - 0.5f) * 2.0f;
        r = 255;
        g = static_cast<u8>(255 * (1.0f - s));
        b = static_cast<u8>(255 * (1.0f - s));
      }
      out.put(static_cast<char>(r));
      out.put(static_cast<char>(g));
      out.put(static_cast<char>(b));
    }
  }
}

}  // namespace gc::io
