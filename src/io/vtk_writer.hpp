// Legacy-VTK writers for the simulation outputs (the offline rendering
// path of Section 5: streamline and volume visualization of the flow and
// the contaminant density).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/vec3.hpp"

namespace gc::io {

/// Writes a scalar field as a STRUCTURED_POINTS legacy VTK file (ASCII).
void write_vtk_scalar(const std::string& path, Int3 dim,
                      const std::vector<float>& data,
                      const std::string& field_name);

/// Writes a vector field (one Vec3 per cell) as STRUCTURED_POINTS.
void write_vtk_vector(const std::string& path, Int3 dim,
                      const std::vector<Vec3>& data,
                      const std::string& field_name);

/// Writes polylines (e.g. streamlines) as legacy VTK POLYDATA.
void write_vtk_polylines(const std::string& path,
                         const std::vector<std::vector<Vec3>>& lines);

}  // namespace gc::io
