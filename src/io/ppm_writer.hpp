// Quick-look PPM image output: renders a z-slice of a scalar field with a
// blue-to-white-to-red colormap (the streamline figures' color scheme:
// blue = horizontal flow, white = vertical component).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/vec3.hpp"

namespace gc::io {

/// Writes slice z of the scalar field as a binary PPM, normalizing values
/// into [lo, hi] (pass lo == hi to auto-scale to the slice's range).
void write_ppm_slice(const std::string& path, Int3 dim,
                     const std::vector<float>& data, int z, float lo = 0.0f,
                     float hi = 0.0f);

}  // namespace gc::io
