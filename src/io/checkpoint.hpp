// Binary checkpointing of the LBM state. Long dispersion runs (the paper
// averages over 500 steps and spins the city flow up for 1000) need
// restartable state: this stores the full distribution set, flags and
// boundary configuration, and restores a bit-identical lattice.
//
// Integrity (format v2): every file is an envelope of
//   [magic][u32 version][u64 body_size][u32 body_crc32][body]
// written to a temporary sibling and committed with an atomic rename, so
// a crash mid-write leaves either the old file or none. Loading verifies
// magic, version, exact body size (truncation detection) and CRC32, and
// throws gc::Error on any mismatch — a flipped byte or a half-written
// file can never be mistaken for valid state.
#pragma once

#include <string>
#include <vector>

#include "lbm/lattice.hpp"

namespace gc::io {

/// Writes the lattice (current buffer, flags, face BCs, inlet) to `path`
/// via tmp-file + rename; the file carries a CRC32 of its body.
void save_checkpoint(const std::string& path, const lbm::Lattice& lat);

/// Reads a checkpoint; returns a lattice equal to the saved one
/// (distributions bit-identical). Throws on malformed, truncated or
/// corrupted files. The on-disk format is storage-agnostic (planes are
/// always in the canonical natural order); the overload with a
/// StorageMode materializes the lattice in that backend so it can be
/// restored straight into an AA-mode simulation.
lbm::Lattice load_checkpoint(const std::string& path);
lbm::Lattice load_checkpoint(const std::string& path, lbm::StorageMode mode);

/// The commit record of a distributed (per-rank) checkpoint: written
/// last, after every rank file landed, so its presence implies a complete
/// consistent snapshot. `rank_files` are relative to the manifest's
/// directory, indexed by rank.
struct ClusterManifest {
  i64 step = 0;            ///< global step count the snapshot was taken at
  Int3 grid{1, 1, 1};      ///< node-grid dimensions
  Int3 lattice_dim{};      ///< global lattice dimensions
  std::vector<std::string> rank_files;
};

/// Writes/reads a manifest with the same envelope integrity guarantees
/// as the lattice checkpoints.
void save_manifest(const std::string& path, const ClusterManifest& m);
ClusterManifest load_manifest(const std::string& path);

}  // namespace gc::io
