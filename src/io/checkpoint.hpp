// Binary checkpointing of the LBM state. Long dispersion runs (the paper
// averages over 500 steps and spins the city flow up for 1000) need
// restartable state: this stores the full distribution set, flags and
// boundary configuration, and restores a bit-identical lattice.
#pragma once

#include <string>

#include "lbm/lattice.hpp"

namespace gc::io {

/// Writes the lattice (current buffer, flags, face BCs, inlet) to `path`.
void save_checkpoint(const std::string& path, const lbm::Lattice& lat);

/// Reads a checkpoint; returns a lattice equal to the saved one
/// (distributions bit-identical). Throws on malformed files.
lbm::Lattice load_checkpoint(const std::string& path);

}  // namespace gc::io
