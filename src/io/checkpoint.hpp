// Binary checkpointing of the LBM state. Long dispersion runs (the paper
// averages over 500 steps and spins the city flow up for 1000) need
// restartable state: this stores the full distribution set, flags and
// boundary configuration, and restores a bit-identical lattice.
//
// Integrity (format v4): every file is an envelope of
//   [magic][u32 version][u64 body_size][u32 body_crc32][body]
// written to a temporary sibling and committed with an atomic rename, so
// a crash mid-write leaves either the old file or none. Loading verifies
// magic, version, exact body size (truncation detection) and CRC32, and
// throws gc::Error on any mismatch — a flipped byte or a half-written
// file can never be mistaken for valid state.
//
// v3 additionally records the StorageMode the saved simulation was
// running (the distribution planes themselves are always serialized in
// the canonical natural order, so the payload is storage-agnostic —
// sparse lattices are expanded to natural planes on save and recompacted
// on load). v4 allows that byte to say Sparse, which a v3 reader must
// reject. v2 files — which predate the header field — still load,
// detected as DoubleBuffer, the only mode that existed when they were
// written.
#pragma once

#include <string>
#include <vector>

#include "lbm/lattice.hpp"

namespace gc::io {

/// Writes the lattice (current buffer, flags, face BCs, inlet) to `path`
/// via tmp-file + rename; the file carries a CRC32 of its body.
void save_checkpoint(const std::string& path, const lbm::Lattice& lat);

/// Reads a checkpoint; returns a lattice equal to the saved one
/// (distributions bit-identical). Throws on malformed, truncated or
/// corrupted files. The on-disk format is storage-agnostic (planes are
/// always in the canonical natural order). The single-argument form
/// materializes the lattice in the StorageMode recorded in the header —
/// callers no longer guess the mode; the overload forces a specific
/// backend (e.g. to restore a DoubleBuffer file straight into an AA
/// simulation).
lbm::Lattice load_checkpoint(const std::string& path);
lbm::Lattice load_checkpoint(const std::string& path, lbm::StorageMode mode);

/// Header facts of a checkpoint, without materializing the lattice.
/// (The envelope is still fully CRC-validated — a checkpoint is small
/// next to the simulation it snapshots.)
struct CheckpointInfo {
  Int3 dim{};
  lbm::StorageMode storage = lbm::StorageMode::DoubleBuffer;
  u32 version = 0;
};
CheckpointInfo read_checkpoint_info(const std::string& path);

/// The commit record of a distributed (per-rank) checkpoint: written
/// last, after every rank file landed, so its presence implies a complete
/// consistent snapshot. `rank_files` are relative to the manifest's
/// directory, indexed by rank.
struct ClusterManifest {
  i64 step = 0;            ///< global step count the snapshot was taken at
  Int3 grid{1, 1, 1};      ///< node-grid dimensions
  Int3 lattice_dim{};      ///< global lattice dimensions
  std::vector<std::string> rank_files;
};

/// Writes/reads a manifest with the same envelope integrity guarantees
/// as the lattice checkpoints.
void save_manifest(const std::string& path, const ClusterManifest& m);
ClusterManifest load_manifest(const std::string& path);

}  // namespace gc::io
