#include "io/csv.hpp"

#include <fstream>

#include "util/common.hpp"

namespace gc::io {

void write_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  GC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << table.csv();
}

}  // namespace gc::io
