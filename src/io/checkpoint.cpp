#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/checksum.hpp"

namespace gc::io {

namespace {
constexpr char kMagic[4] = {'G', 'C', 'L', 'B'};
// v2: storage-agnostic body, no storage-mode field (pre-dates the AA
// backend reaching the header). v3: u8 StorageMode after the velocity
// count. v4: same layout, the storage byte may also say Sparse (v3
// readers must reject such files, hence the bump). All load; v2 is
// detected as DoubleBuffer.
constexpr u32 kMinVersion = 2;
constexpr u32 kVersion = 4;
constexpr char kManifestMagic[4] = {'G', 'C', 'M', 'F'};
constexpr u32 kManifestVersion = 1;

/// Serializes the body into memory so the envelope can carry its exact
/// size and CRC32 up front.
class BodyWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over a fully validated body; every read is bounds-checked so a
/// malformed length field cannot run off the end.
class BodyReader {
 public:
  explicit BodyReader(const std::string& buf) : buf_(buf) {}
  template <typename T>
  void pod(T& v) {
    bytes(&v, sizeof(T));
  }
  void bytes(void* p, std::size_t n) {
    GC_CHECK_MSG(pos_ + n <= buf_.size(), "truncated checkpoint body");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

/// Writes [magic][version][body_size][crc][body] to `path + ".tmp"` and
/// commits with an atomic rename.
void write_envelope(const std::string& path, const char magic[4], u32 version,
                    const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GC_CHECK_MSG(out.good(), "cannot open " << tmp << " for writing");
    out.write(magic, 4);
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const u64 size = body.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    const u32 crc = crc32(body.data(), body.size());
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      GC_CHECK_MSG(false, "write failure on " << tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    GC_CHECK_MSG(false, "cannot rename " << tmp << " to " << path);
  }
}

/// Reads and fully validates an envelope: magic, version (within
/// [min_version, max_version]), exact body size, CRC32. Returns the body
/// and, via `version_out`, the version actually found.
std::string read_envelope(const std::string& path, const char magic[4],
                          u32 min_version, u32 max_version,
                          const char* what, u32* version_out = nullptr) {
  std::ifstream in(path, std::ios::binary);
  GC_CHECK_MSG(in.good(), "cannot open " << path);

  char m[4];
  in.read(m, sizeof(m));
  GC_CHECK_MSG(in.good() && std::memcmp(m, magic, 4) == 0,
               path << " is not a gpucluster " << what);
  u32 version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  GC_CHECK_MSG(in.good() && version >= min_version && version <= max_version,
               "unsupported " << what << " version " << version);
  if (version_out) *version_out = version;
  u64 size = 0;
  u32 crc = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  GC_CHECK_MSG(in.good(), "truncated " << what << " header in " << path);

  std::string body(static_cast<std::size_t>(size), '\0');
  in.read(body.data(), static_cast<std::streamsize>(size));
  GC_CHECK_MSG(static_cast<u64>(in.gcount()) == size,
               path << " is truncated: body has " << in.gcount()
                    << " of " << size << " bytes");
  in.get();
  GC_CHECK_MSG(in.eof(), path << " has trailing bytes after the body");
  GC_CHECK_MSG(crc32(body.data(), body.size()) == crc,
               path << " failed its CRC32 check (corrupted " << what << ")");
  return body;
}
}  // namespace

void save_checkpoint(const std::string& path, const lbm::Lattice& lat) {
  BodyWriter body;
  const Int3 d = lat.dim();
  body.pod(d.x);
  body.pod(d.y);
  body.pod(d.z);
  body.pod(static_cast<u32>(lbm::Q));
  // v3: the storage backend the saved simulation was running. The planes
  // below stay in the canonical natural order regardless.
  body.pod(static_cast<u8>(lat.storage_mode()));

  for (int face = 0; face < 6; ++face) {
    body.pod(static_cast<u8>(lat.face_bc(static_cast<lbm::Face>(face))));
  }
  body.pod(lat.inlet_density());
  const Vec3 uin = lat.inlet_velocity();
  body.pod(uin.x);
  body.pod(uin.y);
  body.pod(uin.z);

  const i64 n = lat.num_cells();
  body.bytes(lat.flags().data(), static_cast<std::size_t>(n));
  if (lat.plane_layout_natural()) {
    for (int i = 0; i < lbm::Q; ++i) {
      body.bytes(lat.plane_ptr(i), static_cast<std::size_t>(n) * sizeof(Real));
    }
  } else {
    // AA lattice in a relocated phase (e.g. a snapshot at odd parity):
    // gather each plane through the accessors so the file stays in the
    // canonical natural order — the on-disk format is storage-agnostic.
    std::vector<Real> plane(static_cast<std::size_t>(n));
    for (int i = 0; i < lbm::Q; ++i) {
      for (i64 c = 0; c < n; ++c) {
        plane[static_cast<std::size_t>(c)] = lat.f(i, c);
      }
      body.bytes(plane.data(), static_cast<std::size_t>(n) * sizeof(Real));
    }
  }

  body.pod(static_cast<u32>(lat.curved_links().size()));
  for (const lbm::CurvedLink& link : lat.curved_links()) {
    body.pod(link.cell);
    body.pod(link.dir);
    body.pod(link.q);
  }
  write_envelope(path, kMagic, kVersion, body.str());
}

namespace {

/// Reads the dims / velocity-count / storage-mode header prefix shared by
/// v2 and v3 bodies (v2 has no storage byte: DoubleBuffer).
lbm::StorageMode read_header_prefix(BodyReader& body, u32 version, Int3* d) {
  body.pod(d->x);
  body.pod(d->y);
  body.pod(d->z);
  u32 q;
  body.pod(q);
  GC_CHECK_MSG(q == static_cast<u32>(lbm::Q),
               "checkpoint has " << q << " velocities, expected " << lbm::Q);
  if (version < 3) return lbm::StorageMode::DoubleBuffer;
  u8 mode;
  body.pod(mode);
  const u8 max_mode = version >= 4 ? static_cast<u8>(lbm::StorageMode::Sparse)
                                   : static_cast<u8>(lbm::StorageMode::AA);
  GC_CHECK_MSG(mode <= max_mode, "invalid storage mode in checkpoint");
  return static_cast<lbm::StorageMode>(mode);
}

lbm::Lattice load_checkpoint_impl(const std::string& path,
                                  const lbm::StorageMode* forced_mode) {
  u32 version = 0;
  const std::string raw =
      read_envelope(path, kMagic, kMinVersion, kVersion, "checkpoint",
                    &version);
  BodyReader body(raw);

  Int3 d;
  const lbm::StorageMode recorded = read_header_prefix(body, version, &d);
  const lbm::StorageMode mode = forced_mode ? *forced_mode : recorded;

  // A fresh DoubleBuffer/AA lattice is in the natural layout (AA phase
  // 0), so the planes can be read straight into plane_ptr. A sparse
  // target has no dense planes at all — load through DoubleBuffer and
  // convert once the flags (which define the compact layout) are final.
  const bool sparse_target = mode == lbm::StorageMode::Sparse;
  lbm::Lattice lat(d, sparse_target ? lbm::StorageMode::DoubleBuffer : mode);
  for (int face = 0; face < 6; ++face) {
    u8 bc;
    body.pod(bc);
    GC_CHECK_MSG(bc <= static_cast<u8>(lbm::FaceBc::FreeSlip),
                 "invalid face BC in checkpoint");
    lat.set_face_bc(static_cast<lbm::Face>(face),
                    static_cast<lbm::FaceBc>(bc));
  }
  Real rho;
  Vec3 uin;
  body.pod(rho);
  body.pod(uin.x);
  body.pod(uin.y);
  body.pod(uin.z);
  lat.set_inlet(rho, uin);

  const i64 n = lat.num_cells();
  std::vector<u8> flags(static_cast<std::size_t>(n));
  body.bytes(flags.data(), static_cast<std::size_t>(n));
  for (i64 c = 0; c < n; ++c) {
    const u8 t = flags[static_cast<std::size_t>(c)];
    GC_CHECK_MSG(t <= static_cast<u8>(lbm::CellType::Outflow),
                 "invalid cell flag in checkpoint");
    lat.set_flag(c, static_cast<lbm::CellType>(t));
  }
  for (int i = 0; i < lbm::Q; ++i) {
    body.bytes(lat.plane_ptr(i), static_cast<std::size_t>(n) * sizeof(Real));
  }

  u32 num_links;
  body.pod(num_links);
  for (u32 k = 0; k < num_links; ++k) {
    lbm::CurvedLink link;
    body.pod(link.cell);
    body.pod(link.dir);
    body.pod(link.q);
    lat.add_curved_link(link);
  }
  GC_CHECK_MSG(body.at_end(), "checkpoint body has trailing bytes");
  if (sparse_target) lat.convert_storage(lbm::StorageMode::Sparse);
  return lat;
}

}  // namespace

lbm::Lattice load_checkpoint(const std::string& path) {
  return load_checkpoint_impl(path, nullptr);
}

lbm::Lattice load_checkpoint(const std::string& path, lbm::StorageMode mode) {
  return load_checkpoint_impl(path, &mode);
}

CheckpointInfo read_checkpoint_info(const std::string& path) {
  CheckpointInfo info;
  const std::string raw =
      read_envelope(path, kMagic, kMinVersion, kVersion, "checkpoint",
                    &info.version);
  BodyReader body(raw);
  info.storage = read_header_prefix(body, info.version, &info.dim);
  return info;
}

void save_manifest(const std::string& path, const ClusterManifest& m) {
  BodyWriter body;
  body.pod(m.step);
  body.pod(m.grid.x);
  body.pod(m.grid.y);
  body.pod(m.grid.z);
  body.pod(m.lattice_dim.x);
  body.pod(m.lattice_dim.y);
  body.pod(m.lattice_dim.z);
  body.pod(static_cast<u32>(m.rank_files.size()));
  for (const std::string& f : m.rank_files) {
    body.pod(static_cast<u32>(f.size()));
    body.bytes(f.data(), f.size());
  }
  write_envelope(path, kManifestMagic, kManifestVersion, body.str());
}

ClusterManifest load_manifest(const std::string& path) {
  const std::string raw = read_envelope(path, kManifestMagic,
                                        kManifestVersion, kManifestVersion,
                                        "manifest");
  BodyReader body(raw);
  ClusterManifest m;
  body.pod(m.step);
  body.pod(m.grid.x);
  body.pod(m.grid.y);
  body.pod(m.grid.z);
  body.pod(m.lattice_dim.x);
  body.pod(m.lattice_dim.y);
  body.pod(m.lattice_dim.z);
  u32 ranks;
  body.pod(ranks);
  GC_CHECK_MSG(ranks >= 1 && ranks <= 1u << 20, "implausible rank count");
  for (u32 r = 0; r < ranks; ++r) {
    u32 len;
    body.pod(len);
    GC_CHECK_MSG(len <= 4096, "implausible rank file name length");
    std::string name(len, '\0');
    body.bytes(name.data(), len);
    m.rank_files.push_back(std::move(name));
  }
  GC_CHECK_MSG(body.at_end(), "manifest body has trailing bytes");
  return m;
}

}  // namespace gc::io
