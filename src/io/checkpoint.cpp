#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>

namespace gc::io {

namespace {
constexpr char kMagic[4] = {'G', 'C', 'L', 'B'};
constexpr u32 kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  GC_CHECK_MSG(in.good(), "truncated checkpoint");
}
}  // namespace

void save_checkpoint(const std::string& path, const lbm::Lattice& lat) {
  std::ofstream out(path, std::ios::binary);
  GC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const Int3 d = lat.dim();
  write_pod(out, d.x);
  write_pod(out, d.y);
  write_pod(out, d.z);
  write_pod(out, static_cast<u32>(lbm::Q));

  for (int face = 0; face < 6; ++face) {
    write_pod(out, static_cast<u8>(lat.face_bc(static_cast<lbm::Face>(face))));
  }
  write_pod(out, lat.inlet_density());
  const Vec3 uin = lat.inlet_velocity();
  write_pod(out, uin.x);
  write_pod(out, uin.y);
  write_pod(out, uin.z);

  const i64 n = lat.num_cells();
  out.write(reinterpret_cast<const char*>(lat.flags().data()),
            static_cast<std::streamsize>(n));
  for (int i = 0; i < lbm::Q; ++i) {
    out.write(reinterpret_cast<const char*>(lat.plane_ptr(i)),
              static_cast<std::streamsize>(n * sizeof(Real)));
  }

  const u32 num_links = static_cast<u32>(lat.curved_links().size());
  write_pod(out, num_links);
  for (const lbm::CurvedLink& link : lat.curved_links()) {
    write_pod(out, link.cell);
    write_pod(out, link.dir);
    write_pod(out, link.q);
  }
  GC_CHECK_MSG(out.good(), "write failure on " << path);
}

lbm::Lattice load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GC_CHECK_MSG(in.good(), "cannot open " << path);

  char magic[4];
  in.read(magic, sizeof(magic));
  GC_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
               path << " is not a gpucluster checkpoint");
  u32 version;
  read_pod(in, version);
  GC_CHECK_MSG(version == kVersion, "unsupported checkpoint version "
                                        << version);
  Int3 d;
  read_pod(in, d.x);
  read_pod(in, d.y);
  read_pod(in, d.z);
  u32 q;
  read_pod(in, q);
  GC_CHECK_MSG(q == static_cast<u32>(lbm::Q),
               "checkpoint has " << q << " velocities, expected " << lbm::Q);

  lbm::Lattice lat(d);
  for (int face = 0; face < 6; ++face) {
    u8 bc;
    read_pod(in, bc);
    GC_CHECK_MSG(bc <= static_cast<u8>(lbm::FaceBc::FreeSlip),
                 "invalid face BC in checkpoint");
    lat.set_face_bc(static_cast<lbm::Face>(face),
                    static_cast<lbm::FaceBc>(bc));
  }
  Real rho;
  Vec3 uin;
  read_pod(in, rho);
  read_pod(in, uin.x);
  read_pod(in, uin.y);
  read_pod(in, uin.z);
  lat.set_inlet(rho, uin);

  const i64 n = lat.num_cells();
  std::vector<u8> flags(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(flags.data()),
          static_cast<std::streamsize>(n));
  GC_CHECK_MSG(in.good(), "truncated checkpoint (flags)");
  for (i64 c = 0; c < n; ++c) {
    const u8 t = flags[static_cast<std::size_t>(c)];
    GC_CHECK_MSG(t <= static_cast<u8>(lbm::CellType::Outflow),
                 "invalid cell flag in checkpoint");
    lat.set_flag(c, static_cast<lbm::CellType>(t));
  }
  for (int i = 0; i < lbm::Q; ++i) {
    in.read(reinterpret_cast<char*>(lat.plane_ptr(i)),
            static_cast<std::streamsize>(n * sizeof(Real)));
    GC_CHECK_MSG(in.good(), "truncated checkpoint (plane " << i << ")");
  }

  u32 num_links;
  read_pod(in, num_links);
  for (u32 k = 0; k < num_links; ++k) {
    lbm::CurvedLink link;
    read_pod(in, link.cell);
    read_pod(in, link.dir);
    read_pod(in, link.q);
    lat.add_curved_link(link);
  }
  return lat;
}

}  // namespace gc::io
