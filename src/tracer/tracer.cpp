#include "tracer/tracer.hpp"

#include <algorithm>

namespace gc::tracer {

using lbm::C;
using lbm::CellType;
using lbm::FaceBc;
using lbm::Q;

TracerCloud::TracerCloud(TracerParams params)
    : params_(params), rng_(params.seed) {}

void TracerCloud::release(Int3 site, int count) {
  GC_CHECK(count >= 0);
  particles_.insert(particles_.end(), static_cast<std::size_t>(count), site);
}

void TracerCloud::step(const lbm::Lattice& lat) {
  const Int3 d = lat.dim();
  std::vector<Int3> kept;
  kept.reserve(particles_.size());

  for (Int3 p : particles_) {
    const i64 cell = lat.idx(p);

    // Sample a link with probability f_i / rho.
    Real rho = 0;
    Real f[Q];
    for (int i = 0; i < Q; ++i) {
      f[i] = std::max(Real(0), lat.f(i, cell));  // guard tiny negatives
      rho += f[i];
    }
    int dir = 0;
    if (rho > Real(0)) {
      const Real r = Real(rng_.uniform()) * rho;
      Real acc = 0;
      for (int i = 0; i < Q; ++i) {
        acc += f[i];
        if (r < acc) {
          dir = i;
          break;
        }
      }
    }

    Int3 q = p + C[dir];
    bool escaped = false;
    for (int a = 0; a < 3; ++a) {
      if (q[a] >= 0 && q[a] < d[a]) continue;
      const auto face =
          static_cast<lbm::Face>(2 * a + (q[a] < 0 ? 0 : 1));
      switch (lat.face_bc(face)) {
        case FaceBc::Periodic:
          q[a] = (q[a] + d[a]) % d[a];
          break;
        case FaceBc::Outflow:
        case FaceBc::Inlet:
          escaped = true;
          break;
        default:
          q[a] = p[a];  // reflect off walls / slip faces
          break;
      }
    }
    if (escaped) {
      ++escaped_;
      continue;
    }
    if (lat.flag(q) == CellType::Solid) {
      q = p;  // the hop is blocked by a building
    }
    kept.push_back(q);
  }
  particles_.swap(kept);
}

void TracerCloud::deposit(const lbm::Lattice& lat,
                          std::vector<float>& density) const {
  density.assign(static_cast<std::size_t>(lat.num_cells()), 0.0f);
  for (const Int3& p : particles_) {
    density[static_cast<std::size_t>(lat.idx(p))] += 1.0f;
  }
}

}  // namespace gc::tracer
