// Tracer-particle dispersion (Section 5, after Lowe & Succi's
// "go with the flow" method): pollution tracers sit on lattice sites and
// hop along lattice links with transition probabilities taken from the
// LBM velocity distributions, p_i = f_i / rho.
#pragma once

#include <vector>

#include "lbm/lattice.hpp"
#include "util/rng.hpp"

namespace gc::tracer {

struct TracerParams {
  u64 seed = 7;
  /// Particles hitting a Solid cell stay put this step (reflective walls).
  bool stick_to_walls = false;
};

class TracerCloud {
 public:
  explicit TracerCloud(TracerParams params = TracerParams{});

  /// Releases `count` particles at a lattice site.
  void release(Int3 site, int count);

  i64 num_particles() const { return static_cast<i64>(particles_.size()); }
  i64 num_escaped() const { return escaped_; }
  const std::vector<Int3>& particles() const { return particles_; }

  /// One dispersion step: every particle samples a link with probability
  /// f_i / rho and hops along it. Particles leaving the domain through
  /// Outflow/Inlet faces are removed (counted as escaped); other faces
  /// reflect. Solid targets cancel the hop.
  void step(const lbm::Lattice& lat);

  /// Accumulates particle counts onto a per-cell density grid.
  void deposit(const lbm::Lattice& lat, std::vector<float>& density) const;

 private:
  TracerParams params_;
  Rng rng_;
  std::vector<Int3> particles_;
  i64 escaped_ = 0;
};

}  // namespace gc::tracer
