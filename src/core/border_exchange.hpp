// Packing/unpacking of the distributions that cross sub-domain borders
// (Section 4.3): a node sends the 5 outgoing distributions of each border
// cell to the axial neighbor behind that face (5N^2 values for an N^3
// block), and a single distribution per cell of each border edge line to
// the diagonal (second-nearest) neighbor (N values) — the latter routed
// indirectly in two axial hops.
#pragma once

#include "core/decomposition.hpp"
#include "lbm/lattice.hpp"
#include "lbm/thermal.hpp"
#include "netsim/mpilite.hpp"

namespace gc::core {

/// Geometry of one node's local lattice: the owned global block plus a
/// one-cell ghost ("proxy point", Figure 14) layer on every side that has
/// a neighbor.
struct LocalDomain {
  SubDomain global;
  Int3 ghost_lo{};  ///< 1 where a lower neighbor exists, else 0
  Int3 ghost_hi{};

  Int3 local_dim() const { return global.size() + ghost_lo + ghost_hi; }
  /// Local coordinates of the owned region (half-open box).
  Int3 own_lo() const { return ghost_lo; }
  Int3 own_hi() const { return ghost_lo + global.size(); }
  /// Global -> local coordinate shift.
  Int3 to_local(Int3 g) const { return g - global.lo + ghost_lo; }

  static LocalDomain make(const Decomposition3& decomp, int node);
};

/// Packs the 5 outgoing post-collision distributions of every owned border
/// cell at `face` (ordering: outer tangent axis, inner tangent axis, then
/// the 5 directions of outgoing_directions(face)).
netsim::Payload pack_face(const lbm::Lattice& local, const LocalDomain& ld,
                          int face);

/// Writes a payload received from the axial neighbor across `face` into
/// the ghost layer beyond that face.
void unpack_face(lbm::Lattice& local, const LocalDomain& ld, int face,
                 const netsim::Payload& data);

/// Packs the single diagonal distribution of the border edge line facing
/// the neighbor at grid offset `off` (exactly two nonzero components).
netsim::Payload pack_edge(const lbm::Lattice& local, const LocalDomain& ld,
                          Int3 off);

/// Writes an edge payload received from the diagonal neighbor at grid
/// offset `off` into the ghost corner line toward that neighbor.
void unpack_edge(lbm::Lattice& local, const LocalDomain& ld, Int3 off,
                 const netsim::Payload& data);

/// Expected payload sizes (cells, not bytes) for validation.
i64 face_payload_size(const LocalDomain& ld, int face);
i64 edge_payload_size(const LocalDomain& ld, Int3 off);

/// Scalar-field (temperature) border exchange for the hybrid thermal
/// model: one value per owned border cell of `face` / per ghost cell
/// beyond it. The 7-point FD stencil needs axial faces only.
netsim::Payload pack_face_scalar(const lbm::ThermalField& field,
                                 const lbm::Lattice& local,
                                 const LocalDomain& ld, int face);
void unpack_face_scalar(lbm::ThermalField& field, const lbm::Lattice& local,
                        const LocalDomain& ld, int face,
                        const netsim::Payload& data);

}  // namespace gc::core
