// Event-level model of the overlapped step pipeline (Section 4.3): the
// GPU gathers and reads back its borders, the network exchange proceeds
// while the GPU computes the inner-cell collision (the ~120 ms window),
// ghost data is written back, and the remaining GPU work (border
// collision, streaming, boundary evaluation) finishes the step. Produces
// a task timeline (Gantt) and the step makespan; cross-validated against
// ClusterSimulator's closed-form breakdown.
#pragma once

#include <string>
#include <vector>

#include "core/cluster_sim.hpp"
#include "obs/trace.hpp"

namespace gc::core {

struct TimelineTask {
  std::string name;
  /// Canonical span name shared with the *executed* overlap engine
  /// (overlap.pack / overlap.inner / overlap.wait / overlap.unpack /
  /// overlap.outer), so modeled and measured traces diff cleanly in one
  /// Chrome-trace viewer. `name` stays the human Gantt label.
  std::string span;
  double start_ms = 0;
  double end_ms = 0;
  double duration_ms() const { return end_ms - start_ms; }
};

struct OverlapTimeline {
  std::vector<TimelineTask> tasks;
  double makespan_ms = 0;
  /// Network time hidden under the inner-collision window.
  double network_hidden_ms = 0;

  const TimelineTask* find(const std::string& name) const;
  /// ASCII Gantt rendering for the benches.
  std::string gantt(int width = 60) const;

  /// Records every task as a span under its canonical overlap.* name
  /// (cat "overlap", tid = `rank`) — the same names/categories the
  /// executed overlap engine emits, so the modeled timeline lands in the
  /// same Chrome-trace file as measured runs and the two diff cleanly in
  /// one viewer.
  void export_trace(obs::TraceRecorder& rec, int rank = 0) const;
};

/// Simulates one overlapped step for the busiest node of the scenario.
OverlapTimeline simulate_overlapped_step(const ClusterScenario& sc);

}  // namespace gc::core
