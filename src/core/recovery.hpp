// Checkpoint-based recovery for the distributed LBM. A cluster
// checkpoint is one CRC-verified lattice file per rank plus a manifest
// committed last (atomic rename), so a crash at any point leaves either
// the previous consistent snapshot or the new one — never a torn mix.
// RecoveryDriver wraps ParallelLbm::run with periodic checkpoints and,
// when a run dies of a communication failure, an injected rank crash or
// a divergence, rolls the simulation back to the last good snapshot and
// resumes. Because the kernels are deterministic and a snapshot captures
// the full per-rank state (ghost layers included), a recovered run is
// bit-identical to an undisturbed one.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/parallel_lbm.hpp"
#include "obs/trace.hpp"

namespace gc::core {

/// Writes one checkpoint file per rank plus the manifest into `dir`
/// (created if missing), recording `sim.current_step()`. Thermal runs
/// are not yet snapshot-able and are rejected.
void save_cluster_checkpoint(const std::string& dir, const ParallelLbm& sim);

/// Restores every rank's distributions from the snapshot in `dir`,
/// rewinds `sim.current_step()` to the recorded step and returns it.
/// Validates the manifest against the simulation's grid and lattice.
i64 load_cluster_checkpoint(const std::string& dir, ParallelLbm& sim);

struct RecoveryConfig {
  std::string dir;           ///< checkpoint directory (required)
  int checkpoint_every = 50; ///< steps between snapshots
  int max_rollbacks = 8;     ///< give up (rethrow) past this many
  /// Rollback/checkpoint spans and ft.* counters go here. Not owned.
  obs::TraceRecorder* trace = nullptr;
  /// Cooperative cancellation: checked before every chunk and before
  /// every rollback. When it returns true the driver stops recovering
  /// and lets the failure escape — a watchdog-aborted run must surface,
  /// not be rolled back and resumed forever. Null = never cancelled.
  std::function<bool()> cancelled;
};

/// One failure the driver recovered from (or died of).
struct RecoveryEvent {
  i64 at_step = 0;       ///< steps completed when the failure hit
  i64 resumed_from = 0;  ///< checkpointed step rolled back to
  std::string what;      ///< the exception text
};

struct RecoveryReport {
  i64 steps = 0;            ///< total steps completed (= requested)
  int checkpoints = 0;      ///< snapshots written
  int rollbacks = 0;        ///< failures recovered from
  double recovery_ms = 0;   ///< total time spent restoring state
  std::vector<RecoveryEvent> events;
};

class RecoveryDriver {
 public:
  RecoveryDriver(ParallelLbm& sim, RecoveryConfig cfg);

  /// Advances `steps` steps with periodic checkpoints, rolling back and
  /// resuming on CommError / RankCrashError / DivergenceError. Rethrows
  /// the last failure once max_rollbacks is exceeded; any other
  /// exception propagates immediately.
  RecoveryReport run(i64 steps);

 private:
  void rollback(RecoveryReport& report, i64 done, const std::string& what);

  ParallelLbm& sim_;
  RecoveryConfig cfg_;
};

}  // namespace gc::core
