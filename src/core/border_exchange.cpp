#include "core/border_exchange.hpp"

#include "gpulbm/programs.hpp"

namespace gc::core {

using gpulbm::outgoing_directions;
using lbm::C;
using lbm::Face;

LocalDomain LocalDomain::make(const Decomposition3& decomp, int node) {
  LocalDomain ld;
  ld.global = decomp.block(node);
  for (int a = 0; a < 3; ++a) {
    Int3 lo_off{0, 0, 0}, hi_off{0, 0, 0};
    lo_off[a] = -1;
    hi_off[a] = +1;
    ld.ghost_lo[a] = decomp.neighbor(node, lo_off) >= 0 ? 1 : 0;
    ld.ghost_hi[a] = decomp.neighbor(node, hi_off) >= 0 ? 1 : 0;
  }
  return ld;
}

namespace {

/// Tangent axes of a face's axis, in ascending order.
void tangent_axes(int axis, int* t1, int* t2) {
  *t1 = axis == 0 ? 1 : 0;
  *t2 = axis == 2 ? 1 : 2;
}

/// Local coordinate of the owned border layer at `face`.
int own_border_coord(const LocalDomain& ld, int face) {
  const int axis = face / 2;
  return (face % 2 == 0) ? ld.own_lo()[axis] : ld.own_hi()[axis] - 1;
}

/// Local coordinate of the ghost layer beyond `face`.
int ghost_coord(const LocalDomain& ld, int face) {
  const int axis = face / 2;
  return (face % 2 == 0) ? ld.own_lo()[axis] - 1 : ld.own_hi()[axis];
}

}  // namespace

i64 face_payload_size(const LocalDomain& ld, int face) {
  const int axis = face / 2;
  int t1, t2;
  tangent_axes(axis, &t1, &t2);
  const Int3 s = ld.global.size();
  return i64(s[t1]) * s[t2] * 5;
}

i64 edge_payload_size(const LocalDomain& ld, Int3 off) {
  int free_axis = -1;
  for (int a = 0; a < 3; ++a) {
    if (off[a] == 0) free_axis = a;
  }
  GC_CHECK(free_axis >= 0);
  return ld.global.size()[free_axis];
}

netsim::Payload pack_face(const lbm::Lattice& local, const LocalDomain& ld,
                          int face) {
  const int axis = face / 2;
  int t1, t2;
  tangent_axes(axis, &t1, &t2);
  const auto dirs = outgoing_directions(static_cast<Face>(face));
  const int bc = own_border_coord(ld, face);

  netsim::Payload out;
  out.reserve(static_cast<std::size_t>(face_payload_size(ld, face)));
  Int3 p;
  p[axis] = bc;
  for (int c2 = ld.own_lo()[t2]; c2 < ld.own_hi()[t2]; ++c2) {
    p[t2] = c2;
    for (int c1 = ld.own_lo()[t1]; c1 < ld.own_hi()[t1]; ++c1) {
      p[t1] = c1;
      const i64 cell = local.idx(p);
      for (int i : dirs) out.push_back(local.f(i, cell));
    }
  }
  return out;
}

void unpack_face(lbm::Lattice& local, const LocalDomain& ld, int face,
                 const netsim::Payload& data) {
  GC_CHECK(static_cast<i64>(data.size()) == face_payload_size(ld, face));
  const int axis = face / 2;
  int t1, t2;
  tangent_axes(axis, &t1, &t2);
  // The neighbor across `face` sent the distributions *entering* through
  // it — its outgoing directions across the opposite face.
  const int opposite = (face % 2 == 0) ? face + 1 : face - 1;
  const auto dirs = outgoing_directions(static_cast<Face>(opposite));
  const int gc_coord = ghost_coord(ld, face);

  std::size_t k = 0;
  Int3 p;
  p[axis] = gc_coord;
  for (int c2 = ld.own_lo()[t2]; c2 < ld.own_hi()[t2]; ++c2) {
    p[t2] = c2;
    for (int c1 = ld.own_lo()[t1]; c1 < ld.own_hi()[t1]; ++c1) {
      p[t1] = c1;
      const i64 cell = local.idx(p);
      for (int i : dirs) local.set_f(i, cell, data[k++]);
    }
  }
}

netsim::Payload pack_face_scalar(const lbm::ThermalField& field,
                                 const lbm::Lattice& local,
                                 const LocalDomain& ld, int face) {
  const int axis = face / 2;
  int t1, t2;
  tangent_axes(axis, &t1, &t2);
  const int bc = own_border_coord(ld, face);

  netsim::Payload out;
  out.reserve(static_cast<std::size_t>(face_payload_size(ld, face) / 5));
  Int3 p;
  p[axis] = bc;
  for (int c2 = ld.own_lo()[t2]; c2 < ld.own_hi()[t2]; ++c2) {
    p[t2] = c2;
    for (int c1 = ld.own_lo()[t1]; c1 < ld.own_hi()[t1]; ++c1) {
      p[t1] = c1;
      out.push_back(field.t(local.idx(p)));
    }
  }
  return out;
}

void unpack_face_scalar(lbm::ThermalField& field, const lbm::Lattice& local,
                        const LocalDomain& ld, int face,
                        const netsim::Payload& data) {
  const int axis = face / 2;
  int t1, t2;
  tangent_axes(axis, &t1, &t2);
  GC_CHECK(static_cast<i64>(data.size()) == face_payload_size(ld, face) / 5);
  const int gc_coord = ghost_coord(ld, face);

  std::size_t k = 0;
  Int3 p;
  p[axis] = gc_coord;
  for (int c2 = ld.own_lo()[t2]; c2 < ld.own_hi()[t2]; ++c2) {
    p[t2] = c2;
    for (int c1 = ld.own_lo()[t1]; c1 < ld.own_hi()[t1]; ++c1) {
      p[t1] = c1;
      field.set_t(local.idx(p), data[k++]);
    }
  }
}

netsim::Payload pack_edge(const lbm::Lattice& local, const LocalDomain& ld,
                          Int3 off) {
  const int dir = lbm::direction_index(off);
  GC_CHECK_MSG(dir >= 0, "edge offset " << off << " is not a lattice link");
  int free_axis = -1;
  for (int a = 0; a < 3; ++a) {
    if (off[a] == 0) free_axis = a;
  }
  GC_CHECK(free_axis >= 0);

  Int3 p;
  for (int a = 0; a < 3; ++a) {
    if (a == free_axis) continue;
    p[a] = off[a] > 0 ? ld.own_hi()[a] - 1 : ld.own_lo()[a];
  }
  netsim::Payload out;
  out.reserve(static_cast<std::size_t>(edge_payload_size(ld, off)));
  for (int c = ld.own_lo()[free_axis]; c < ld.own_hi()[free_axis]; ++c) {
    p[free_axis] = c;
    out.push_back(local.f(dir, local.idx(p)));
  }
  return out;
}

void unpack_edge(lbm::Lattice& local, const LocalDomain& ld, Int3 off,
                 const netsim::Payload& data) {
  GC_CHECK(static_cast<i64>(data.size()) == edge_payload_size(ld, off));
  // The sender sits at grid offset `off`; it sent its f_d with d = -off
  // (the direction pointing from it toward us). We store d at the ghost
  // corner line toward the sender.
  const int dir = lbm::direction_index(Int3{-off.x, -off.y, -off.z});
  GC_CHECK(dir >= 0);
  int free_axis = -1;
  for (int a = 0; a < 3; ++a) {
    if (off[a] == 0) free_axis = a;
  }
  GC_CHECK(free_axis >= 0);

  Int3 p;
  for (int a = 0; a < 3; ++a) {
    if (a == free_axis) continue;
    p[a] = off[a] > 0 ? ld.own_hi()[a] : ld.own_lo()[a] - 1;
  }
  std::size_t k = 0;
  for (int c = ld.own_lo()[free_axis]; c < ld.own_hi()[free_axis]; ++c) {
    p[free_axis] = c;
    local.set_f(dir, local.idx(p), data[k++]);
  }
}

}  // namespace gc::core
