// The full-stack functional reproduction of the paper's system: each
// logical cluster node owns a *simulated GPU* (texture stacks + fragment
// programs) running the LBM, border distributions are gathered on-GPU and
// read back over the simulated AGP bus, exchanged across MpiLite following
// the pairwise schedule with two-hop diagonal routing, written back into
// the neighbor GPUs' ghost layers, and streaming proceeds on-GPU.
// Produces results bit-identical to both the host distributed solver
// (core::ParallelLbm) and the serial reference — the payload wire format
// is byte-compatible with ParallelLbm's, node for node.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/border_exchange.hpp"
#include "core/decomposition.hpp"
#include "gpulbm/gpu_solver.hpp"
#include "netsim/mpilite.hpp"
#include "netsim/schedule.hpp"

namespace gc::core {

struct GpuClusterConfig {
  Real tau = Real(0.8);
  /// Node arrangement; 2D only (dims.z == 1), as in the paper's Table 1.
  netsim::NodeGrid grid;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::geforce_fx5800_ultra();
  gpusim::BusSpec bus = gpusim::BusSpec::agp8x();
};

class GpuClusterLbm {
 public:
  /// Scatters `global` across the node grid; one simulated GPU per node.
  GpuClusterLbm(const lbm::Lattice& global, GpuClusterConfig cfg);

  const Decomposition3& decomposition() const { return decomp_; }
  const netsim::CommSchedule& schedule() const { return sched_; }

  /// Advances every node `steps` LBM steps (one MpiLite rank per node).
  void run(int steps);

  /// Reassembles the owned regions into a global lattice.
  void gather(lbm::Lattice& out) const;

  /// Sum of all nodes' simulated-GPU time ledgers.
  gpusim::GpuTimeLedger total_ledger() const;

 private:
  void node_step(netsim::Comm& comm, int node);

  GpuClusterConfig cfg_;
  Decomposition3 decomp_;
  netsim::CommSchedule sched_;
  std::vector<netsim::IndirectRoute> routes_;
  std::vector<LocalDomain> domains_;
  std::vector<std::unique_ptr<gpusim::GpuDevice>> devices_;
  std::vector<std::unique_ptr<gpulbm::GpuLbmSolver>> gpus_;
  netsim::MpiLite world_;
  std::vector<std::map<std::pair<int, int>, netsim::Payload>> forward_store_;
};

}  // namespace gc::core
