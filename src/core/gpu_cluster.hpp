// The full-stack functional reproduction of the paper's system: each
// logical cluster node owns a *simulated GPU* (texture stacks + fragment
// programs) running the LBM, border distributions are gathered on-GPU and
// read back over the simulated AGP bus, exchanged across MpiLite following
// the pairwise schedule with two-hop diagonal routing, written back into
// the neighbor GPUs' ghost layers, and streaming proceeds on-GPU.
// Produces results bit-identical to both the host distributed solver
// (core::ParallelLbm) and the serial reference — the payload wire format
// is byte-compatible with ParallelLbm's, node for node.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/border_exchange.hpp"
#include "core/decomposition.hpp"
#include "gpulbm/gpu_solver.hpp"
#include "netsim/mpilite.hpp"
#include "netsim/schedule.hpp"
#include "obs/trace.hpp"

namespace gc::core {

struct GpuClusterConfig {
  Real tau = Real(0.8);
  /// Node arrangement; 2D only (dims.z == 1), as in the paper's Table 1.
  netsim::NodeGrid grid;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::geforce_fx5800_ultra();
  gpusim::BusSpec bus = gpusim::BusSpec::agp8x();
  /// Executed §4.4 overlap: post border isend/irecvs, render the inner
  /// streaming rectangle while messages are in flight, wait, write
  /// ghosts, render the outer strips. Bit-identical to the synchronous
  /// path (same per-texel programs, each texel rendered exactly once)
  /// and wire-compatible with it.
  bool overlap = false;
  /// Fluid-cell-balanced cut placement (same semantics as
  /// ParallelConfig::fluid_balanced): the cut planes follow the global
  /// lattice's marginal non-solid histograms instead of uniform splits.
  /// Topology and results are unchanged; only block extents move.
  bool fluid_balanced = false;
  /// When set, overlap mode emits overlap.pack / overlap.inner /
  /// overlap.wait / overlap.unpack / overlap.outer spans (tid = node)
  /// and run() publishes the mpi.overlap_hidden_ms gauge. Not owned.
  obs::TraceRecorder* trace = nullptr;
};

class GpuClusterLbm {
 public:
  /// Scatters `global` across the node grid; one simulated GPU per node.
  GpuClusterLbm(const lbm::Lattice& global, GpuClusterConfig cfg);

  const Decomposition3& decomposition() const { return decomp_; }
  const netsim::CommSchedule& schedule() const { return sched_; }

  /// Advances every node `steps` LBM steps (one MpiLite rank per node).
  void run(int steps);

  /// Reassembles the owned regions into a global lattice.
  void gather(lbm::Lattice& out) const;

  /// Sum of all nodes' simulated-GPU time ledgers.
  gpusim::GpuTimeLedger total_ledger() const;

  /// Cumulative network time node `node` hid under its inner streaming
  /// render (overlap mode only; 0 otherwise).
  double overlap_hidden_ms(int node) const;

 private:
  void node_step(netsim::Comm& comm, int node);
  void node_step_overlap(netsim::Comm& comm, int node);

  GpuClusterConfig cfg_;
  Decomposition3 decomp_;
  netsim::CommSchedule sched_;
  std::vector<netsim::IndirectRoute> routes_;
  std::vector<LocalDomain> domains_;
  std::vector<std::unique_ptr<gpusim::GpuDevice>> devices_;
  std::vector<std::unique_ptr<gpulbm::GpuLbmSolver>> gpus_;
  netsim::MpiLite world_;
  std::vector<std::map<std::pair<int, int>, netsim::Payload>> forward_store_;
  /// Per-node cumulative hidden network time (overlap mode only).
  std::vector<double> hidden_ms_;
};

}  // namespace gc::core
