#include "core/scaling_study.hpp"

#include "lbm/solver.hpp"
#include "util/timer.hpp"

namespace gc::core {

std::vector<int> paper_node_counts() {
  return {1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32};
}

std::vector<StepBreakdown> weak_scaling(Int3 per_node,
                                        const std::vector<int>& node_counts,
                                        const NodePerfProfile& node,
                                        const netsim::NetSpec& net) {
  ClusterSimulator sim;
  std::vector<StepBreakdown> out;
  out.reserve(node_counts.size());
  for (int n : node_counts) {
    ClusterScenario sc;
    sc.grid = netsim::NodeGrid::arrange_2d(n);
    sc.lattice = Int3{per_node.x * sc.grid.dims.x, per_node.y * sc.grid.dims.y,
                      per_node.z * sc.grid.dims.z};
    sc.node = node;
    sc.net = net;
    out.push_back(sim.simulate_step(sc));
  }
  return out;
}

std::vector<StepBreakdown> strong_scaling(Int3 lattice,
                                          const std::vector<int>& node_counts,
                                          const NodePerfProfile& node,
                                          const netsim::NetSpec& net) {
  ClusterSimulator sim;
  std::vector<StepBreakdown> out;
  out.reserve(node_counts.size());
  for (int n : node_counts) {
    ClusterScenario sc;
    sc.grid = netsim::NodeGrid::arrange_2d(n);
    sc.lattice = lattice;
    sc.node = node;
    sc.net = net;
    out.push_back(sim.simulate_step(sc));
  }
  return out;
}

std::vector<ThroughputRow> throughput_rows(
    const std::vector<StepBreakdown>& series, i64 cells_per_node) {
  std::vector<ThroughputRow> rows;
  rows.reserve(series.size());
  double rate1 = 0.0;
  for (const StepBreakdown& b : series) {
    const double rate = static_cast<double>(cells_per_node) * b.nodes /
                        (b.gpu_total_ms * 1e-3) / 1e6;
    if (b.nodes == 1) rate1 = rate;
    ThroughputRow r;
    r.nodes = b.nodes;
    r.mcells_per_s = rate;
    r.speedup_vs_1 = rate1 > 0 ? rate / rate1 : 0.0;
    r.efficiency = b.nodes > 0 ? r.speedup_vs_1 / b.nodes : 0.0;
    rows.push_back(r);
  }
  return rows;
}

double measure_host_step_ms(Int3 dim, int steps, const MeasureOptions& opt) {
  GC_CHECK(steps > 0);
  lbm::SolverConfig cfg;
  static_cast<lbm::RunParams&>(cfg) = opt;  // tau / collision / storage
  cfg.fused = opt.fused;
  cfg.pool = opt.pool;
  lbm::Solver solver(dim, cfg);
  solver.lattice().init_equilibrium(Real(1), Vec3{Real(0.05), 0, 0});
  solver.step();  // warm-up
  Timer t;
  solver.run(steps);
  return t.millis() / steps;
}

double measure_host_step_ms(const lbm::Lattice& geometry, int steps,
                            const MeasureOptions& opt) {
  GC_CHECK(steps > 0);
  lbm::SolverConfig cfg;
  static_cast<lbm::RunParams&>(cfg) = opt;
  cfg.fused = opt.fused;
  cfg.pool = opt.pool;
  // The solver constructs its lattice in cfg.storage; seed it in the
  // geometry's own layout first, then convert, so set_flag/set_f never
  // interleave with a compact remap.
  cfg.storage = geometry.storage_mode();
  lbm::Solver solver(geometry.dim(), cfg);
  solver.lattice() = geometry;
  if (opt.storage != geometry.storage_mode()) {
    solver.lattice().convert_storage(opt.storage);
  }
  solver.lattice().cell_class();  // classification outside the clock
  solver.step();  // warm-up
  Timer t;
  solver.run(steps);
  return t.millis() / steps;
}

}  // namespace gc::core
