// Scaling-study drivers shared by the benchmarks: the weak-scaling sweep
// behind Table 1 / Table 2 / Figures 8-10 (fixed 80^3 per node, 2D node
// arrangements) and the fixed-problem-size strong-scaling sweep of the
// last paragraph of Section 4.4.
#pragma once

#include <vector>

#include "core/cluster_sim.hpp"
#include "lbm/run_params.hpp"
#include "util/thread_pool.hpp"

namespace gc::core {

/// Node counts reported by the paper's Table 1.
std::vector<int> paper_node_counts();

/// Weak scaling: every node computes `per_node` cells; the lattice grows
/// with the node grid (2D arrangements, as in Table 1).
std::vector<StepBreakdown> weak_scaling(
    Int3 per_node, const std::vector<int>& node_counts,
    const NodePerfProfile& node = NodePerfProfile::paper_node(),
    const netsim::NetSpec& net = netsim::NetSpec::gigabit_ethernet());

/// Strong scaling: a fixed lattice split across more and more nodes.
std::vector<StepBreakdown> strong_scaling(
    Int3 lattice, const std::vector<int>& node_counts,
    const NodePerfProfile& node = NodePerfProfile::paper_node(),
    const netsim::NetSpec& net = netsim::NetSpec::gigabit_ethernet());

/// Table-2 style throughput rows derived from a weak-scaling series.
struct ThroughputRow {
  int nodes;
  double mcells_per_s;   ///< million lattice cells updated per second
  double speedup_vs_1;   ///< rate_n / rate_1
  double efficiency;     ///< speedup / n
};
std::vector<ThroughputRow> throughput_rows(
    const std::vector<StepBreakdown>& series, i64 cells_per_node);

/// Knobs for measured mode: which host hot path to time. The default is
/// the serial split collide+stream reference; the fastest configuration is
/// the fused span kernel on a thread pool. Embeds lbm::RunParams
/// (tau / collision / storage — see run_params.hpp).
struct MeasureOptions : lbm::RunParams {
  bool fused = false;          ///< fused stream+collide instead of split
  ThreadPool* pool = nullptr;  ///< run kernels on this pool (not owned)
};

/// Measured mode: actually steps a periodic 3D lattice on this host and
/// returns the mean wall-clock milliseconds per LBM step (used to report
/// our own numbers next to the paper's in EXPERIMENTS.md).
double measure_host_step_ms(Int3 dim, int steps,
                            const MeasureOptions& opt = {});

/// Geometry-aware variant: steps a copy of `geometry` (flags, BCs and
/// state included) under opt.storage, so solid-laden scenes can be timed
/// on the backend that actually skips their solid cells. The lattice is
/// converted after seeding; the kernels see the exact same configuration
/// in every mode.
double measure_host_step_ms(const lbm::Lattice& geometry, int steps,
                            const MeasureOptions& opt = {});

}  // namespace gc::core
