#include "core/partition.hpp"

#include <chrono>

#include "core/gpu_cluster.hpp"
#include "core/parallel_lbm.hpp"
#include "core/recovery.hpp"

namespace gc::core {

PartitionPool::PartitionPool(int partitions, PartitionSpec spec)
    : spec_(spec),
      n_slots_(partitions),
      slots_(static_cast<std::size_t>(partitions)) {
  GC_CHECK_MSG(partitions >= 1, "a partition pool needs at least one slot");
  GC_CHECK_MSG(spec_.grid.num_nodes() >= 1, "empty partition node grid");
  GC_CHECK_MSG(spec_.failure_threshold >= 1,
               "failure_threshold must be >= 1");
  GC_CHECK_MSG(spec_.probation_ms >= 0, "probation_ms must be >= 0");
}

PartitionPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), slot_(other.slot_), seq_(other.seq_) {
  other.pool_ = nullptr;
}

PartitionPool::Lease& PartitionPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_) pool_->release(slot_);
    pool_ = other.pool_;
    slot_ = other.slot_;
    seq_ = other.seq_;
    other.pool_ = nullptr;
  }
  return *this;
}

PartitionPool::Lease::~Lease() {
  if (pool_) pool_->release(slot_);
}

void PartitionPool::promote_probations_locked() {
  const double now = clock_.millis();
  bool changed = false;
  for (Slot& sl : slots_) {
    if (sl.health == Health::kQuarantined &&
        now - sl.quarantined_at_ms >= spec_.probation_ms) {
      sl.health = Health::kProbation;
      changed = true;
    }
  }
  if (changed) publish_degraded_locked();
}

int PartitionPool::find_slot_locked(int exclude) {
  promote_probations_locked();
  int probation = -1;
  int excluded = -1;
  for (int s = 0; s < size(); ++s) {
    Slot& sl = slots_[static_cast<std::size_t>(s)];
    if (sl.busy || sl.health == Health::kQuarantined) continue;
    if (s == exclude) {
      excluded = s;
      continue;
    }
    if (sl.health == Health::kHealthy) return s;
    if (probation < 0) probation = s;
  }
  if (probation >= 0) return probation;
  // Exclusion is a routing preference, not a ban: with every other slot
  // quarantined or busy, the excluded slot beats waiting forever.
  return excluded;
}

std::optional<PartitionPool::Lease> PartitionPool::acquire_until(
    int exclude, const std::function<bool()>& give_up) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopped_) throw LeaseAbortedError("partition pool is shut down");
    const int slot = find_slot_locked(exclude);
    if (slot >= 0) {
      Slot& sl = slots_[static_cast<std::size_t>(slot)];
      sl.busy = true;
      sl.lease_seq = ++lease_counter_;
      return Lease(this, slot, sl.lease_seq);
    }
    if (give_up && give_up()) return std::nullopt;
    // Short bounded slices: a release/abort wakes us immediately, and
    // the timeout re-evaluates probation timers and give_up even when
    // nothing was notified.
    cv_.wait_for(lock, std::chrono::milliseconds(10), [this, exclude] {
      return stopped_ || find_slot_locked(exclude) >= 0;
    });
  }
}

PartitionPool::Lease PartitionPool::acquire() {
  std::optional<Lease> lease = acquire_until(-1, nullptr);
  return std::move(*lease);  // engaged: null give_up never gives up
}

int PartitionPool::idle() const {
  std::unique_lock<std::mutex> lock(mu_);
  int n = 0;
  for (const Slot& sl : slots_) n += sl.busy ? 0 : 1;
  return n;
}

void PartitionPool::release(int slot) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    Slot& sl = slots_[static_cast<std::size_t>(slot)];
    sl.busy = false;
    sl.kill = false;
    sl.active = nullptr;
  }
  cv_.notify_all();
}

void PartitionPool::set_faults(int slot, netsim::FaultSpec* faults) {
  std::unique_lock<std::mutex> lock(mu_);
  GC_CHECK_MSG(slot >= 0 && slot < size(), "invalid partition slot " << slot);
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  GC_CHECK_MSG(!sl.busy, "set_faults on a leased partition");
  if (faults) {
    GC_CHECK_MSG(spec_.backend == ClusterBackend::Host,
                 "fault injection targets the host partition backend");
    GC_CHECK_MSG(!spec_.recovery_dir.empty(),
                 "PartitionSpec.recovery_dir is required for faulted slots");
  }
  sl.faults = faults;
}

netsim::FaultSpec* PartitionPool::slot_faults(int slot) const {
  std::unique_lock<std::mutex> lock(mu_);
  return slots_[static_cast<std::size_t>(slot)].faults;
}

std::string PartitionPool::slot_recovery_dir(int slot) const {
  return spec_.recovery_dir + "/slot_" + std::to_string(slot);
}

void PartitionPool::publish_degraded_locked() {
  if (!spec_.health_trace) return;
  int n = 0;
  for (const Slot& sl : slots_) n += sl.health == Health::kQuarantined ? 1 : 0;
  spec_.health_trace->set_gauge("service.degraded", 0, n);
}

void PartitionPool::quarantine_locked(int slot) {
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  sl.health = Health::kQuarantined;
  sl.quarantined_at_ms = clock_.millis();
  if (spec_.health_trace) {
    spec_.health_trace->add_counter("service.quarantined", 0, 1);
  }
  publish_degraded_locked();
}

void PartitionPool::report_success(int slot) {
  std::unique_lock<std::mutex> lock(mu_);
  GC_CHECK_MSG(slot >= 0 && slot < size(), "invalid partition slot " << slot);
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  sl.consecutive_failures = 0;
  if (sl.health == Health::kProbation) sl.health = Health::kHealthy;
}

void PartitionPool::report_failure(int slot) {
  std::unique_lock<std::mutex> lock(mu_);
  GC_CHECK_MSG(slot >= 0 && slot < size(), "invalid partition slot " << slot);
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  sl.consecutive_failures += 1;
  if (sl.health == Health::kProbation) {
    // The probe failed: straight back to quarantine for another cooldown.
    quarantine_locked(slot);
  } else if (sl.health == Health::kHealthy &&
             sl.consecutive_failures >= spec_.failure_threshold) {
    quarantine_locked(slot);
  }
}

PartitionPool::Health PartitionPool::health(int slot) {
  std::unique_lock<std::mutex> lock(mu_);
  GC_CHECK_MSG(slot >= 0 && slot < size(), "invalid partition slot " << slot);
  promote_probations_locked();
  return slots_[static_cast<std::size_t>(slot)].health;
}

int PartitionPool::quarantined() const {
  std::unique_lock<std::mutex> lock(mu_);
  int n = 0;
  for (const Slot& sl : slots_) n += sl.health == Health::kQuarantined ? 1 : 0;
  return n;
}

void PartitionPool::abort_lease(int slot, u64 lease) {
  std::unique_lock<std::mutex> lock(mu_);
  GC_CHECK_MSG(slot >= 0 && slot < size(), "invalid partition slot " << slot);
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  if (!sl.busy) return;
  if (lease != 0 && sl.lease_seq != lease) return;  // a later tenant
  sl.kill = true;
  // Waking the ranks is safe under mu_: MpiLite never calls back into
  // the pool, so there is no lock cycle.
  if (sl.active) sl.active->abort_comm();
}

void PartitionPool::abort_all() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopped_ = true;
    for (Slot& sl : slots_) {
      if (!sl.busy) continue;
      sl.kill = true;
      if (sl.active) sl.active->abort_comm();
    }
  }
  cv_.notify_all();
}

void PartitionPool::register_active(int slot, ParallelLbm* sim) {
  std::unique_lock<std::mutex> lock(mu_);
  Slot& sl = slots_[static_cast<std::size_t>(slot)];
  sl.active = sim;
  // An abort requested before the simulation existed lands now.
  if (sim && (sl.kill || stopped_)) sim->abort_comm();
}

bool PartitionPool::kill_requested(int slot) const {
  std::unique_lock<std::mutex> lock(mu_);
  return slots_[static_cast<std::size_t>(slot)].kill || stopped_;
}

obs::RunStats PartitionPool::Lease::run(lbm::Lattice& state, int steps,
                                        const lbm::RunParams& params) const {
  GC_CHECK_MSG(pool_, "run() on a moved-from lease");
  PartitionPool& pool = *pool_;
  const PartitionSpec& spec = pool.spec();
  if (spec.backend == ClusterBackend::SimulatedGpu) {
    GC_CHECK_MSG(params.collision == lbm::CollisionKind::BGK,
                 "the simulated-GPU partition backend runs BGK only");
    GC_CHECK_MSG(params.storage == lbm::StorageMode::DoubleBuffer,
                 "the simulated-GPU partition backend owns its own texture "
                 "storage; request DoubleBuffer");
    GpuClusterConfig cfg;
    cfg.tau = params.tau;
    cfg.grid = spec.grid;
    cfg.overlap = spec.overlap;
    cfg.trace = spec.trace;
    GpuClusterLbm sim(state, cfg);
    Timer t;
    sim.run(steps);
    obs::RunStats stats;
    stats.steps = steps;
    stats.wall_ms = t.millis();
    sim.gather(state);
    return stats;
  }
  netsim::FaultSpec* faults = pool.slot_faults(slot_);
  ParallelConfig cfg;
  static_cast<lbm::RunParams&>(cfg) = params;
  cfg.grid = spec.grid;
  cfg.overlap = spec.overlap;
  cfg.trace = spec.trace;
  cfg.faults = faults;
  cfg.reliability = spec.reliability;
  cfg.sentinel = spec.sentinel;
  ParallelLbm sim(state, cfg);
  pool.register_active(slot_, &sim);
  try {
    obs::RunStats stats;
    if (faults) {
      // Faulted slot: run under the recovery driver so transient faults
      // roll back in place and only terminal ones escape. The cancelled
      // hook keeps a watchdog abort terminal — recovery must not heal a
      // run its owner is killing.
      RecoveryConfig rc;
      rc.dir = pool.slot_recovery_dir(slot_);
      rc.checkpoint_every = spec.checkpoint_every;
      rc.max_rollbacks = spec.max_rollbacks;
      rc.trace = spec.trace;
      const int slot = slot_;
      PartitionPool* p = pool_;
      rc.cancelled = [p, slot] { return p->kill_requested(slot); };
      RecoveryDriver driver(sim, std::move(rc));
      Timer t;
      driver.run(steps);
      stats.steps = steps;
      stats.wall_ms = t.millis();
    } else {
      stats = sim.run(steps);
    }
    pool.register_active(slot_, nullptr);
    sim.gather(state);
    return stats;
  } catch (const Error&) {
    pool.register_active(slot_, nullptr);
    // An externally killed run fails with whatever the abort surfaced as
    // (CommAborted mid-run, a plain world-aborted Error between chunks);
    // the kill flag is the ground truth for "this was a cancellation".
    if (pool.kill_requested(slot_)) {
      throw LeaseAbortedError("partition lease aborted mid-run");
    }
    throw;
  }
}

}  // namespace gc::core
