#include "core/partition.hpp"

#include "core/gpu_cluster.hpp"
#include "core/parallel_lbm.hpp"
#include "util/timer.hpp"

namespace gc::core {

PartitionPool::PartitionPool(int partitions, PartitionSpec spec)
    : spec_(spec), busy_(static_cast<std::size_t>(partitions), 0) {
  GC_CHECK_MSG(partitions >= 1, "a partition pool needs at least one slot");
  GC_CHECK_MSG(spec_.grid.num_nodes() >= 1, "empty partition node grid");
}

PartitionPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), slot_(other.slot_) {
  other.pool_ = nullptr;
}

PartitionPool::Lease::~Lease() {
  if (pool_) pool_->release(slot_);
}

PartitionPool::Lease PartitionPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  int slot = -1;
  cv_.wait(lock, [this, &slot] {
    for (std::size_t s = 0; s < busy_.size(); ++s) {
      if (!busy_[s]) {
        slot = static_cast<int>(s);
        return true;
      }
    }
    return false;
  });
  busy_[static_cast<std::size_t>(slot)] = 1;
  return Lease(this, slot);
}

int PartitionPool::idle() const {
  std::unique_lock<std::mutex> lock(mu_);
  int n = 0;
  for (const char b : busy_) n += b ? 0 : 1;
  return n;
}

void PartitionPool::release(int slot) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    busy_[static_cast<std::size_t>(slot)] = 0;
  }
  cv_.notify_one();
}

obs::RunStats PartitionPool::Lease::run(lbm::Lattice& state, int steps,
                                        const lbm::RunParams& params) const {
  GC_CHECK_MSG(pool_, "run() on a moved-from lease");
  const PartitionSpec& spec = pool_->spec();
  if (spec.backend == ClusterBackend::SimulatedGpu) {
    GC_CHECK_MSG(params.collision == lbm::CollisionKind::BGK,
                 "the simulated-GPU partition backend runs BGK only");
    GC_CHECK_MSG(params.storage == lbm::StorageMode::DoubleBuffer,
                 "the simulated-GPU partition backend owns its own texture "
                 "storage; request DoubleBuffer");
    GpuClusterConfig cfg;
    cfg.tau = params.tau;
    cfg.grid = spec.grid;
    cfg.overlap = spec.overlap;
    cfg.trace = spec.trace;
    GpuClusterLbm sim(state, cfg);
    Timer t;
    sim.run(steps);
    obs::RunStats stats;
    stats.steps = steps;
    stats.wall_ms = t.millis();
    sim.gather(state);
    return stats;
  }
  ParallelConfig cfg;
  static_cast<lbm::RunParams&>(cfg) = params;
  cfg.grid = spec.grid;
  cfg.overlap = spec.overlap;
  cfg.trace = spec.trace;
  ParallelLbm sim(state, cfg);
  const obs::RunStats stats = sim.run(steps);
  sim.gather(state);
  return stats;
}

}  // namespace gc::core
