#include "core/gpu_cluster.hpp"

#include <algorithm>

#include "netsim/tags.hpp"

namespace gc::core {

using gpulbm::outgoing_directions;
using lbm::Face;
using lbm::FaceBc;
using netsim::Comm;
using netsim::Payload;

namespace {

/// Local in-slice coordinate of a node's own border layer at `face`.
int own_border_coord(const LocalDomain& ld, int face) {
  const int axis = face / 2;
  return (face % 2 == 0) ? ld.own_lo()[axis] : ld.own_hi()[axis] - 1;
}

int ghost_coord(const LocalDomain& ld, int face) {
  const int axis = face / 2;
  return (face % 2 == 0) ? ld.own_lo()[axis] - 1 : ld.own_hi()[axis];
}

/// Index of direction `dir` within outgoing_directions(face).
int dir_slot(Face face, int dir) {
  const auto dirs = outgoing_directions(face);
  for (int k = 0; k < 5; ++k) {
    if (dirs[static_cast<std::size_t>(k)] == dir) return k;
  }
  GC_CHECK_MSG(false, "direction " << dir << " does not leave face " << face);
  return -1;
}

/// Diagonal chunk for grid offset `off`, cut from the already-read x-face
/// border payload (the corner line is part of the x-face border).
Payload extract_edge_chunk(const LocalDomain& ld, int dz,
                           const std::map<int, Payload>& face_payload,
                           Int3 off) {
  const int fx = off.x > 0 ? lbm::FACE_XMAX : lbm::FACE_XMIN;
  const auto it = face_payload.find(fx);
  GC_CHECK(it != face_payload.end());
  const int t0 = ld.own_lo().y;
  const int bw = ld.own_hi().y - t0;
  const int t = (off.y > 0 ? ld.own_hi().y - 1 : ld.own_lo().y) - t0;
  const int k = dir_slot(static_cast<Face>(fx), lbm::direction_index(off));
  Payload chunk;
  chunk.reserve(static_cast<std::size_t>(dz));
  for (int z = 0; z < dz; ++z) {
    chunk.push_back(
        it->second[(static_cast<std::size_t>(z) * bw + t) * 5 +
                   static_cast<std::size_t>(k)]);
  }
  return chunk;
}
}  // namespace

GpuClusterLbm::GpuClusterLbm(const lbm::Lattice& global, GpuClusterConfig cfg)
    : cfg_(cfg),
      decomp_(cfg.fluid_balanced
                  ? Decomposition3(global.dim(), cfg.grid, global.flags())
                  : Decomposition3(global.dim(), cfg.grid)),
      sched_(netsim::CommSchedule::pairwise(cfg.grid)),
      world_(cfg.grid.num_nodes()) {
  GC_CHECK_MSG(cfg.grid.dims.z == 1,
               "GpuClusterLbm decomposes in 2D (dims.z must be 1)");
  GC_CHECK(global.curved_links().empty());
  for (int a = 0; a < 2; ++a) {
    if (cfg.grid.dims[a] > 1) {
      GC_CHECK_MSG(
          global.face_bc(static_cast<Face>(2 * a)) != FaceBc::Periodic &&
              global.face_bc(static_cast<Face>(2 * a + 1)) !=
                  FaceBc::Periodic,
          "decomposed axis " << a << " cannot be periodic");
    }
  }
  routes_ = netsim::plan_indirect_routes(sched_);

  const int n = decomp_.num_nodes();
  forward_store_.resize(static_cast<std::size_t>(n));
  hidden_ms_.assign(static_cast<std::size_t>(n), 0.0);
  for (int node = 0; node < n; ++node) {
    const LocalDomain ld = LocalDomain::make(decomp_, node);
    domains_.push_back(ld);

    // Build the local host lattice (flags, BCs, initial state) exactly as
    // core::ParallelLbm does, then hand it to a fresh simulated GPU.
    lbm::Lattice local(ld.local_dim());
    for (int face = 0; face < 6; ++face) {
      const int axis = face / 2;
      const bool has_neighbor =
          (face % 2 == 0) ? ld.ghost_lo[axis] == 1 : ld.ghost_hi[axis] == 1;
      local.set_face_bc(static_cast<Face>(face),
                        has_neighbor
                            ? FaceBc::Outflow
                            : global.face_bc(static_cast<Face>(face)));
    }
    local.set_inlet(global.inlet_density(), global.inlet_velocity());
    const Int3 dl = ld.local_dim();
    for (int z = 0; z < dl.z; ++z) {
      for (int y = 0; y < dl.y; ++y) {
        for (int x = 0; x < dl.x; ++x) {
          const Int3 g = Int3{x, y, z} + ld.global.lo - ld.ghost_lo;
          const i64 lc = local.idx(x, y, z);
          const i64 gcell = global.idx(g);
          local.set_flag(lc, global.flag(gcell));
          for (int i = 0; i < lbm::Q; ++i) {
            local.set_f(i, lc, global.f(i, gcell));
          }
        }
      }
    }
    devices_.push_back(
        std::make_unique<gpusim::GpuDevice>(cfg.gpu, cfg.bus));
    gpus_.push_back(std::make_unique<gpulbm::GpuLbmSolver>(*devices_.back(),
                                                           local, cfg.tau));
  }
}

void GpuClusterLbm::node_step(Comm& comm, int node) {
  gpulbm::GpuLbmSolver& gpu = *gpus_[static_cast<std::size_t>(node)];
  const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
  const netsim::NodeGrid& grid = cfg_.grid;
  const Int3 myc = grid.coords(node);
  const int dz = ld.local_dim().z;

  gpu.collide_pass();

  // Gather + read back the post-collision border of every neighbor face
  // (the Section 4.3 single-read optimization, on the simulated AGP bus).
  std::map<int, Payload> face_payload;
  for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
    (void)nb;
    const int axis = face / 2;
    const int t_axis = axis == 0 ? 1 : 0;
    face_payload[face] = gpu.read_border_plane(
        static_cast<Face>(face), own_border_coord(ld, face),
        ld.own_lo()[t_axis], ld.own_hi()[t_axis], 0, dz);
  }

  auto& store = forward_store_[static_cast<std::size_t>(node)];

  for (int k = 0; k < sched_.num_steps(); ++k) {
    int partner = -1;
    for (const netsim::ExchangePair& p :
         sched_.steps[static_cast<std::size_t>(k)]) {
      if (p.a == node) partner = p.b;
      if (p.b == node) partner = p.a;
    }
    int face = -1;
    if (partner >= 0) {
      const Int3 off = grid.coords(partner) - myc;
      for (int a = 0; a < 3; ++a) {
        if (off[a] != 0) face = 2 * a + (off[a] > 0 ? 1 : 0);
      }
      comm.send(partner, netsim::kFace, face_payload.at(face));
    }

    for (const netsim::IndirectRoute& r : routes_) {
      if (r.src == node && r.first_step == k) {
        comm.send(r.via, netsim::kHop1Base + r.dst,
                  extract_edge_chunk(ld, dz, face_payload,
                                     grid.coords(r.dst) - myc));
      }
      if (r.via == node && r.second_step == k) {
        auto it = store.find({r.src, r.dst});
        GC_CHECK(it != store.end());
        comm.send(r.dst, netsim::kHop2Base + r.src, std::move(it->second));
        store.erase(it);
      }
    }

    if (partner >= 0) {
      const Payload data = comm.recv(partner, netsim::kFace);
      const int axis = face / 2;
      const int t_axis = axis == 0 ? 1 : 0;
      gpu.write_ghost_plane(static_cast<Face>(face), ghost_coord(ld, face),
                            ld.own_lo()[t_axis], ld.own_hi()[t_axis], 0, dz,
                            data);
    }
    for (const netsim::IndirectRoute& r : routes_) {
      if (r.via == node && r.first_step == k) {
        store[{r.src, r.dst}] = comm.recv(r.src, netsim::kHop1Base + r.dst);
      }
      if (r.dst == node && r.second_step == k) {
        const Payload data = comm.recv(r.via, netsim::kHop2Base + r.src);
        const Int3 off = grid.coords(r.src) - myc;
        const int gx = off.x > 0 ? ld.own_hi().x : ld.own_lo().x - 1;
        const int gy = off.y > 0 ? ld.own_hi().y : ld.own_lo().y - 1;
        const int dir = lbm::direction_index(Int3{-off.x, -off.y, 0});
        gpu.write_ghost_line_z(gx, gy, dir, 0, dz, data);
      }
    }
  }

  gpu.stream_pass();
}

void GpuClusterLbm::node_step_overlap(Comm& comm, int node) {
  gpulbm::GpuLbmSolver& gpu = *gpus_[static_cast<std::size_t>(node)];
  const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
  const netsim::NodeGrid& grid = cfg_.grid;
  const Int3 myc = grid.coords(node);
  const int dz = ld.local_dim().z;
  obs::TraceRecorder* rec = cfg_.trace;

  gpu.collide_pass();

  std::map<int, Payload> face_payload;
  for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
    (void)nb;
    const int axis = face / 2;
    const int t_axis = axis == 0 ? 1 : 0;
    face_payload[face] = gpu.read_border_plane(
        static_cast<Face>(face), own_border_coord(ld, face),
        ld.own_lo()[t_axis], ld.own_hi()[t_axis], 0, dz);
  }

  // Inner streaming rectangle: inset two texels (ghost layer + the shell
  // that reads it) on every side that has a neighbor; z is undecomposed.
  const Int3 dl = ld.local_dim();
  gpusim::Rect inner;
  inner.x0 = ld.ghost_lo.x ? 2 : 0;
  inner.y0 = ld.ghost_lo.y ? 2 : 0;
  inner.x1 = dl.x - (ld.ghost_hi.x ? 2 : 0);
  inner.y1 = dl.y - (ld.ghost_hi.y ? 2 : 0);

  // Wire-compatible with node_step: same payloads, same channels, one
  // message per channel per step.
  struct FaceRecv {
    int face;
    netsim::Request req;
  };
  struct EdgeRecv {
    Int3 off;
    netsim::Request req;
  };
  struct Hop1Recv {
    const netsim::IndirectRoute* route;
    netsim::Request req;
  };
  std::vector<FaceRecv> face_recvs;
  std::vector<EdgeRecv> edge_recvs;
  std::vector<Hop1Recv> hop1_recvs;

  {
    obs::ScopedSpan pack(rec, "overlap.pack", node, "overlap");
    for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
      comm.isend(nb, netsim::kFace, face_payload.at(face));
    }
    for (const netsim::IndirectRoute& r : routes_) {
      if (r.src == node) {
        comm.isend(r.via, netsim::kHop1Base + r.dst,
                   extract_edge_chunk(ld, dz, face_payload,
                                      grid.coords(r.dst) - myc));
      }
    }
    for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
      face_recvs.push_back({face, comm.irecv(nb, netsim::kFace)});
    }
    for (const netsim::IndirectRoute& r : routes_) {
      if (r.via == node) {
        hop1_recvs.push_back({&r, comm.irecv(r.src, netsim::kHop1Base + r.dst)});
      }
      if (r.dst == node) {
        edge_recvs.push_back({grid.coords(r.src) - myc,
                              comm.irecv(r.via, netsim::kHop2Base + r.src)});
      }
    }
  }

  const double t_post_us = world_.now_us();
  {
    obs::ScopedSpan span(rec, "overlap.inner", node, "overlap");
    gpu.stream_pass_inner(inner);
  }
  const double t_window_us = world_.now_us();

  double t_arrival_us = t_post_us;
  {
    obs::ScopedSpan span(rec, "overlap.wait", node, "overlap");
    std::vector<netsim::Request> batch;
    for (const FaceRecv& fr : face_recvs) batch.push_back(fr.req);
    for (const Hop1Recv& hr : hop1_recvs) batch.push_back(hr.req);
    comm.wait_all(batch);
    // Forward the second hop of the diagonal routes through this node.
    for (Hop1Recv& hr : hop1_recvs) {
      comm.send(hr.route->dst, netsim::kHop2Base + hr.route->src,
                comm.wait(hr.req));
    }
    std::vector<netsim::Request> batch2;
    for (const EdgeRecv& er : edge_recvs) batch2.push_back(er.req);
    comm.wait_all(batch2);

    for (const FaceRecv& fr : face_recvs) {
      t_arrival_us = std::max(t_arrival_us, fr.req.complete_time_us());
    }
    for (const Hop1Recv& hr : hop1_recvs) {
      t_arrival_us = std::max(t_arrival_us, hr.req.complete_time_us());
    }
    for (const EdgeRecv& er : edge_recvs) {
      t_arrival_us = std::max(t_arrival_us, er.req.complete_time_us());
    }
  }
  hidden_ms_[static_cast<std::size_t>(node)] +=
      std::max(0.0, std::min(t_arrival_us, t_window_us) - t_post_us) * 1e-3;

  {
    obs::ScopedSpan span(rec, "overlap.unpack", node, "overlap");
    for (FaceRecv& fr : face_recvs) {
      const int axis = fr.face / 2;
      const int t_axis = axis == 0 ? 1 : 0;
      gpu.write_ghost_plane(static_cast<Face>(fr.face),
                            ghost_coord(ld, fr.face), ld.own_lo()[t_axis],
                            ld.own_hi()[t_axis], 0, dz, comm.wait(fr.req));
    }
    for (EdgeRecv& er : edge_recvs) {
      const int gx = er.off.x > 0 ? ld.own_hi().x : ld.own_lo().x - 1;
      const int gy = er.off.y > 0 ? ld.own_hi().y : ld.own_lo().y - 1;
      const int dir = lbm::direction_index(Int3{-er.off.x, -er.off.y, 0});
      gpu.write_ghost_line_z(gx, gy, dir, 0, dz, comm.wait(er.req));
    }
  }

  {
    obs::ScopedSpan span(rec, "overlap.outer", node, "overlap");
    gpu.stream_pass_outer(inner);
  }
}

void GpuClusterLbm::run(int steps) {
  world_.run([this, steps](Comm& comm) {
    for (int s = 0; s < steps; ++s) {
      if (cfg_.overlap) {
        node_step_overlap(comm, comm.rank());
      } else {
        node_step(comm, comm.rank());
      }
    }
  });
  if (cfg_.trace && cfg_.overlap) {
    for (int r = 0; r < world_.size(); ++r) {
      cfg_.trace->set_gauge("mpi.overlap_hidden_ms", r,
                            hidden_ms_[static_cast<std::size_t>(r)]);
    }
  }
}

double GpuClusterLbm::overlap_hidden_ms(int node) const {
  GC_CHECK_MSG(node >= 0 && node < decomp_.num_nodes(),
               "invalid node " << node);
  return cfg_.overlap ? hidden_ms_[static_cast<std::size_t>(node)] : 0.0;
}

void GpuClusterLbm::gather(lbm::Lattice& out) const {
  GC_CHECK(out.dim() == decomp_.lattice_dim());
  for (int node = 0; node < decomp_.num_nodes(); ++node) {
    const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
    lbm::Lattice local(ld.local_dim());
    gpus_[static_cast<std::size_t>(node)]->copy_state_to_host(local);
    const SubDomain& b = ld.global;
    for (int z = b.lo.z; z < b.hi.z; ++z) {
      for (int y = b.lo.y; y < b.hi.y; ++y) {
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          const Int3 l = ld.to_local(Int3{x, y, z});
          const i64 gcell = out.idx(x, y, z);
          for (int i = 0; i < lbm::Q; ++i) {
            out.set_f(i, gcell, local.f(i, local.idx(l)));
          }
        }
      }
    }
  }
}

gpusim::GpuTimeLedger GpuClusterLbm::total_ledger() const {
  gpusim::GpuTimeLedger total;
  for (const auto& dev : devices_) {
    const gpusim::GpuTimeLedger& l = dev->ledger();
    total.compute_s += l.compute_s;
    total.download_s += l.download_s;
    total.readback_s += l.readback_s;
    total.passes += l.passes;
    total.fragments += l.fragments;
    total.tex_fetches += l.tex_fetches;
  }
  return total;
}

}  // namespace gc::core
