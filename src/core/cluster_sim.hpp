// The GPU-cluster timing simulator: composes the calibrated node profile,
// the bus model and the switch model into the per-step pipeline of
// Section 4.3/4.4 — GPU compute (with border-gather passes), GPU->CPU
// read-back and CPU->GPU write-back per neighbor, and the scheduled
// network exchange overlapped with the inner-cell collision window.
// Produces exactly the rows of Table 1 / Table 2 and the series of
// Figures 8-10.
#pragma once

#include <optional>

#include "core/cost_model.hpp"
#include "core/decomposition.hpp"
#include "netsim/switch_model.hpp"

namespace gc::core {

struct ClusterScenario {
  Int3 lattice{80, 80, 80};
  netsim::NodeGrid grid{};
  NodePerfProfile node = NodePerfProfile::paper_node();
  netsim::NetSpec net = netsim::NetSpec::gigabit_ethernet();
  /// Barrier per schedule step; default: the paper's rule (<= 16 nodes).
  std::optional<bool> barrier;
  /// Route diagonal traffic indirectly (the paper's design). Direct mode
  /// adds unscheduled second-nearest-neighbor messages (ablation A1).
  bool indirect_diagonals = true;
};

/// Per-step timing, in milliseconds — the columns of Table 1.
struct StepBreakdown {
  int nodes = 1;
  double cpu_total_ms = 0;       ///< CPU cluster (network hidden by thread 2)
  double gpu_compute_ms = 0;     ///< incl. boundary eval + gather passes
  double gpu_cpu_comm_ms = 0;    ///< AGP read-back + write-back
  double net_total_ms = 0;       ///< full network exchange time
  double net_nonoverlap_ms = 0;  ///< part exceeding the overlap window
  double overlap_window_ms = 0;  ///< inner-cell collision time
  double gpu_total_ms = 0;       ///< compute + bus + non-overlapped network

  double speedup() const { return cpu_total_ms / gpu_total_ms; }
};

class ClusterSimulator {
 public:
  StepBreakdown simulate_step(const ClusterScenario& sc) const;

  /// Per-pair payloads for every schedule step (face bytes + piggybacked
  /// diagonal chunks), computed analytically from the decomposition. Same
  /// name and shape as ParallelLbm::traffic_bytes_per_step — the analytic
  /// prediction of exactly what the functional layer measures, asserted
  /// equal in the test suite.
  static netsim::TrafficMatrix traffic_bytes_per_step(
      const Decomposition3& decomp, const netsim::CommSchedule& sched,
      bool indirect_diagonals);
};

}  // namespace gc::core
