// Block domain decomposition (Section 4.3, Figure 6): the LBM lattice is
// split into 3D blocks, one per GPU node, arranged on a logical node grid.
// Cube-like blocks minimize the boundary-surface-to-volume ratio and thus
// the communicated bytes.
#pragma once

#include <vector>

#include "netsim/schedule.hpp"
#include "util/common.hpp"
#include "util/vec3.hpp"

namespace gc::core {

/// One node's block: the half-open global cell range [lo, hi).
struct SubDomain {
  int node = -1;
  Int3 lo{};
  Int3 hi{};
  Int3 size() const { return hi - lo; }
  i64 num_cells() const { return size().volume(); }
};

class Decomposition3 {
 public:
  /// Splits `lattice_dim` across `grid`; remainders spread over the first
  /// blocks of each axis so block sizes differ by at most one cell.
  Decomposition3(Int3 lattice_dim, netsim::NodeGrid grid);

  /// Fluid-cell-balanced coordinate partitioning (hemelb's xyzpart idea):
  /// per-axis cut planes are placed on the marginal non-solid cell counts
  /// instead of uniformly, so ranks of an urban geometry get near-equal
  /// fluid loads. `flags` are the global lattice's per-cell flags
  /// (lbm::CellType as u8, x fastest). The node-grid topology — and with
  /// it every neighbor/face/exchange relation — is exactly the uniform
  /// decomposition's; only the cut positions move, so this cannot change
  /// any simulated value, just who computes it.
  Decomposition3(Int3 lattice_dim, netsim::NodeGrid grid,
                 const std::vector<u8>& flags);

  Int3 lattice_dim() const { return dim_; }
  const netsim::NodeGrid& grid() const { return grid_; }
  int num_nodes() const { return grid_.num_nodes(); }

  const SubDomain& block(int node) const;
  const std::vector<SubDomain>& blocks() const { return blocks_; }

  /// Node id of the neighbor at grid offset `off` from `node`, or -1.
  int neighbor(int node, Int3 off) const;

  /// Axial neighbors of a node (up to 6), as (face, neighbor id).
  std::vector<std::pair<int, int>> axial_neighbors(int node) const;

  /// Area (cells) of the face shared with the axial neighbor across
  /// `face` (0..5 as lbm::Face); 0 if no neighbor.
  i64 face_area(int node, int face) const;

  /// Verifies the blocks tile the lattice exactly (used by tests).
  bool tiles_domain() const;

  /// Largest bytes one node sends across one face per step
  /// (5 outgoing distributions per border cell, sizeof(Real) each).
  i64 max_face_bytes() const;

 private:
  Int3 dim_;
  netsim::NodeGrid grid_;
  std::vector<SubDomain> blocks_;
};

}  // namespace gc::core
