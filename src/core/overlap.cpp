#include "core/overlap.hpp"

#include <algorithm>
#include <sstream>

#include "gpusim/bus.hpp"

namespace gc::core {

const TimelineTask* OverlapTimeline::find(const std::string& name) const {
  for (const TimelineTask& t : tasks) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string OverlapTimeline::gantt(int width) const {
  std::ostringstream os;
  if (makespan_ms <= 0) return "";
  std::size_t label_w = 0;
  for (const TimelineTask& t : tasks) label_w = std::max(label_w, t.name.size());
  for (const TimelineTask& t : tasks) {
    const int a = static_cast<int>(t.start_ms / makespan_ms * width);
    const int b = std::max(
        a + 1, static_cast<int>(t.end_ms / makespan_ms * width));
    os << "  " << t.name << std::string(label_w - t.name.size() + 2, ' ')
       << std::string(static_cast<std::size_t>(a), ' ')
       << std::string(static_cast<std::size_t>(b - a), '#') << "  "
       << static_cast<int>(t.start_ms) << ".." << static_cast<int>(t.end_ms)
       << " ms\n";
  }
  return os.str();
}

void OverlapTimeline::export_trace(obs::TraceRecorder& rec, int rank) const {
  for (const TimelineTask& t : tasks) {
    rec.record_span(t.span.empty() ? t.name : t.span, "overlap", rank,
                    t.start_ms * 1e3, t.end_ms * 1e3);
  }
  rec.set_gauge("model.makespan_ms", rank, makespan_ms);
  rec.set_gauge("model.network_hidden_ms", rank, network_hidden_ms);
}

OverlapTimeline simulate_overlapped_step(const ClusterScenario& sc) {
  // Decompose the closed-form costs into pipeline tasks for the busiest
  // node, then schedule them with their dependencies on an event queue.
  const Decomposition3 decomp(sc.lattice, sc.grid);
  const int n = sc.grid.num_nodes();

  // Busiest node: largest block, then most neighbors (same critical-path
  // choice as ClusterSimulator).
  i64 cells = 0;
  int busiest = 0;
  int degree0 = 0;
  for (int node = 0; node < n; ++node) {
    const i64 c = decomp.block(node).num_cells();
    const int d = static_cast<int>(decomp.axial_neighbors(node).size());
    if (c > cells || (c == cells && d > degree0)) {
      cells = c;
      degree0 = d;
      busiest = node;
    }
  }

  gpusim::Bus bus(sc.node.bus);
  double readback_ms = 0, writeback_ms = 0;
  int degree = 0;
  for (const auto& [face, nb] : decomp.axial_neighbors(busiest)) {
    (void)nb;
    const i64 bytes =
        decomp.face_area(busiest, face) * 5 * static_cast<i64>(sizeof(Real));
    readback_ms += bus.upload_cost(bytes) * 1e3;
    writeback_ms += bus.download_cost(bytes) * 1e3;
    ++degree;
  }

  const double window_ms = sc.node.gpu_ns_per_cell *
                           static_cast<double>(cells) *
                           sc.node.overlap_fraction * 1e-6;
  const double rest_gpu_ms =
      sc.node.gpu_ns_per_cell * static_cast<double>(cells) * 1e-6 -
      window_ms + sc.node.gather_pass_s * degree * 1e3;

  double network_ms = 0;
  if (n > 1) {
    const auto sched = netsim::CommSchedule::pairwise(sc.grid);
    const netsim::SwitchModel sw(sc.net);
    const bool barrier = sc.barrier.value_or(netsim::NetSpec::auto_barrier(n));
    const auto bytes =
        ClusterSimulator::traffic_bytes_per_step(decomp, sched,
                                                 sc.indirect_diagonals);
    network_ms = sw.scheduled_seconds(sched, bytes, barrier).total_s * 1e3;
  }

  // Dependencies: gather/readback first; then the network exchange and
  // the inner collision run concurrently; the ghost write-back follows
  // the network; the rest of the GPU step needs both the window and the
  // write-back done.
  OverlapTimeline tl;
  auto add_task = [&tl](const std::string& name, const std::string& span,
                        double start, double dur) {
    tl.tasks.push_back(TimelineTask{name, span, start, start + dur});
    return start + dur;
  };

  const double t_read =
      add_task("border gather+readback", "overlap.pack", 0.0, readback_ms);
  const double t_net =
      add_task("network exchange", "overlap.wait", t_read, network_ms);
  const double t_window =
      add_task("inner-cell collision", "overlap.inner", t_read, window_ms);
  const double t_write =
      add_task("ghost write-back", "overlap.unpack", t_net, writeback_ms);
  const double t_rest =
      add_task("border collide + stream", "overlap.outer",
               std::max(t_window, t_write), rest_gpu_ms);
  tl.makespan_ms = t_rest;
  tl.network_hidden_ms = std::min(network_ms, window_ms);
  return tl;
}

}  // namespace gc::core
