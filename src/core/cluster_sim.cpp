#include "core/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/bus.hpp"

namespace gc::core {

netsim::TrafficMatrix ClusterSimulator::traffic_bytes_per_step(
    const Decomposition3& decomp, const netsim::CommSchedule& sched,
    bool indirect_diagonals) {
  const auto rb = static_cast<i64>(sizeof(Real));
  netsim::TrafficMatrix bytes(sched.steps.size());
  const netsim::NodeGrid& grid = sched.grid;

  for (std::size_t k = 0; k < sched.steps.size(); ++k) {
    const auto& step = sched.steps[k];
    bytes[k].assign(step.size(), 0);
    for (std::size_t pi = 0; pi < step.size(); ++pi) {
      const netsim::ExchangePair& p = step[pi];
      const Int3 off = grid.coords(p.b) - grid.coords(p.a);
      int face = -1;
      for (int a = 0; a < 3; ++a) {
        if (off[a] != 0) face = 2 * a + (off[a] > 0 ? 1 : 0);
      }
      bytes[k][pi] += decomp.face_area(p.a, face) * 5 * rb;
    }
  }

  if (indirect_diagonals) {
    for (const netsim::IndirectRoute& r : netsim::plan_indirect_routes(sched)) {
      const Int3 off = grid.coords(r.dst) - grid.coords(r.src);
      int free_axis = 0;
      for (int a = 0; a < 3; ++a) {
        if (off[a] == 0) free_axis = a;
      }
      const i64 sz = decomp.block(r.src).size()[free_axis] * rb;
      auto add = [&](int step, int na, int nb) {
        const auto want = std::minmax(na, nb);
        auto& pairs = sched.steps[static_cast<std::size_t>(step)];
        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
          if (std::minmax(pairs[pi].a, pairs[pi].b) == want) {
            bytes[static_cast<std::size_t>(step)][pi] += sz;
            return;
          }
        }
      };
      add(r.first_step, r.src, r.via);
      add(r.second_step, r.via, r.dst);
    }
  }
  return bytes;
}

StepBreakdown ClusterSimulator::simulate_step(const ClusterScenario& sc) const {
  const Decomposition3 decomp(sc.lattice, sc.grid);
  const int n = sc.grid.num_nodes();

  // Critical path: the busiest node (largest block, most neighbors).
  i64 cells = 0;
  int degree = 0;
  int busiest = 0;
  for (int node = 0; node < n; ++node) {
    const i64 c = decomp.block(node).num_cells();
    const int d = static_cast<int>(decomp.axial_neighbors(node).size());
    if (c > cells || (c == cells && d > degree)) {
      cells = c;
      degree = d;
      busiest = node;
    }
  }

  StepBreakdown out;
  out.nodes = n;

  const double log2n = n > 1 ? std::log2(static_cast<double>(n)) : 0.0;
  out.cpu_total_ms = sc.node.cpu_ns_per_cell * static_cast<double>(cells) *
                     (1.0 + sc.node.cpu_jitter_coef * log2n) * 1e-6;

  out.gpu_compute_ms =
      sc.node.gpu_ns_per_cell * static_cast<double>(cells) * 1e-6 +
      sc.node.gather_pass_s * degree * 1e3;
  out.overlap_window_ms = sc.node.gpu_ns_per_cell *
                          static_cast<double>(cells) *
                          sc.node.overlap_fraction * 1e-6;

  // GPU<->CPU bus traffic: one gathered read-back and one write-back per
  // neighbor face of the busiest node.
  gpusim::Bus bus(sc.node.bus);
  double comm_s = 0.0;
  for (const auto& [face, nb] : decomp.axial_neighbors(busiest)) {
    (void)nb;
    const i64 face_bytes =
        decomp.face_area(busiest, face) * 5 * static_cast<i64>(sizeof(Real));
    comm_s += bus.upload_cost(face_bytes) + bus.download_cost(face_bytes);
  }
  out.gpu_cpu_comm_ms = comm_s * 1e3;

  // Network exchange.
  if (n > 1) {
    const netsim::CommSchedule sched = netsim::CommSchedule::pairwise(sc.grid);
    const netsim::SwitchModel sw(sc.net);
    const bool barrier = sc.barrier.value_or(netsim::NetSpec::auto_barrier(n));
    const auto bytes =
        traffic_bytes_per_step(decomp, sched, sc.indirect_diagonals);
    out.net_total_ms = sw.scheduled_seconds(sched, bytes, barrier).total_s * 1e3;

    if (!sc.indirect_diagonals) {
      // Ablation: direct second-nearest-neighbor messages, unscheduled.
      std::vector<netsim::Message> diag;
      for (int node = 0; node < n; ++node) {
        for (int a = 0; a < 3; ++a) {
          for (int b = a + 1; b < 3; ++b) {
            for (int sa = -1; sa <= 1; sa += 2) {
              for (int sb = -1; sb <= 1; sb += 2) {
                Int3 off{0, 0, 0};
                off[a] = sa;
                off[b] = sb;
                const int nb2 = decomp.neighbor(node, off);
                if (nb2 < 0) continue;
                int free_axis = 3 - a - b;
                const i64 sz = decomp.block(node).size()[free_axis] *
                               static_cast<i64>(sizeof(Real));
                diag.push_back(netsim::Message{node, nb2, sz});
              }
            }
          }
        }
      }
      out.net_total_ms += sw.direct_exchange_seconds(diag, n) * 1e3;
    }
  }

  out.net_nonoverlap_ms =
      std::max(0.0, out.net_total_ms - out.overlap_window_ms);
  out.gpu_total_ms =
      out.gpu_compute_ms + out.gpu_cpu_comm_ms + out.net_nonoverlap_ms;
  return out;
}

}  // namespace gc::core
