#include "core/parallel_lbm.hpp"

#include <algorithm>

#include "lbm/mrt.hpp"
#include "lbm/stream.hpp"
#include "netsim/tags.hpp"
#include "util/timer.hpp"

namespace gc::core {

using lbm::CellType;
using lbm::FaceBc;
using netsim::Comm;
using netsim::Payload;

namespace {
Decomposition3 make_decomposition(const lbm::Lattice& global,
                                  const ParallelConfig& cfg) {
  return cfg.fluid_balanced
             ? Decomposition3(global.dim(), cfg.grid, global.flags())
             : Decomposition3(global.dim(), cfg.grid);
}
}  // namespace

ParallelLbm::ParallelLbm(const lbm::Lattice& global, ParallelConfig cfg)
    : cfg_(cfg),
      decomp_(make_decomposition(global, cfg)),
      sched_(netsim::CommSchedule::pairwise(cfg.grid)),
      world_(cfg.grid.num_nodes()) {
  GC_CHECK_MSG(global.curved_links().empty(),
               "the distributed solver supports flag-based boundaries only");
  for (int a = 0; a < 3; ++a) {
    if (cfg.grid.dims[a] > 1) {
      GC_CHECK_MSG(
          global.face_bc(static_cast<lbm::Face>(2 * a)) != FaceBc::Periodic &&
              global.face_bc(static_cast<lbm::Face>(2 * a + 1)) !=
                  FaceBc::Periodic,
          "axis " << a << " is decomposed across nodes and cannot be periodic");
    }
  }
  if (cfg_.indirect_diagonals) {
    routes_ = netsim::plan_indirect_routes(sched_);
  }
  if (cfg_.faults) world_.set_fault_spec(cfg_.faults);
  world_.set_reliability(cfg_.reliability);
  if (cfg_.thermal) {
    GC_CHECK_MSG(cfg_.collision == lbm::CollisionKind::MRT,
                 "the hybrid thermal model couples to the MRT collision");
    GC_CHECK_MSG(cfg_.grid.dims.z == 1 || !cfg_.thermal->dirichlet_z,
                 "Dirichlet plates need an undecomposed z axis");
  }

  const int n = decomp_.num_nodes();
  domains_.reserve(static_cast<std::size_t>(n));
  locals_.reserve(static_cast<std::size_t>(n));
  forward_store_.resize(static_cast<std::size_t>(n));

  for (int node = 0; node < n; ++node) {
    const LocalDomain ld = LocalDomain::make(decomp_, node);
    domains_.push_back(ld);
    // Seed in the natural double-buffered layout — the loop below
    // interleaves flag and value writes, which would thrash a sparse
    // remap — and convert to the requested storage once the local
    // geometry is final.
    auto lat = std::make_unique<lbm::Lattice>(ld.local_dim());

    // Face boundary conditions: global faces keep the global BC; faces
    // toward neighbors are covered by the ghost layer and never consulted
    // by owned-cell pulls (Outflow keeps ghost streaming cheap and local).
    for (int face = 0; face < 6; ++face) {
      const int axis = face / 2;
      const bool has_neighbor =
          (face % 2 == 0) ? ld.ghost_lo[axis] == 1 : ld.ghost_hi[axis] == 1;
      lat->set_face_bc(static_cast<lbm::Face>(face),
                       has_neighbor
                           ? FaceBc::Outflow
                           : global.face_bc(static_cast<lbm::Face>(face)));
    }
    lat->set_inlet(global.inlet_density(), global.inlet_velocity());
    if (global.has_inlet_profile()) {
      // Local coordinates shift by the block origin minus the ghost rim.
      // The profile is copied by value: the global lattice need not
      // outlive this solver.
      const Int3 shift = ld.global.lo - ld.ghost_lo;
      lat->set_inlet_profile(
          [profile = global.inlet_profile(), shift](Int3 local) {
            return profile(local + shift);
          });
    }

    // Copy flags and distributions for every local cell (ghosts included:
    // ghost flags persist; ghost f is refreshed by each step's exchange).
    const Int3 dl = ld.local_dim();
    for (int z = 0; z < dl.z; ++z) {
      for (int y = 0; y < dl.y; ++y) {
        for (int x = 0; x < dl.x; ++x) {
          const Int3 g = Int3{x, y, z} + ld.global.lo - ld.ghost_lo;
          GC_CHECK(global.in_bounds(g));
          const i64 lc = lat->idx(x, y, z);
          const i64 gcell = global.idx(g);
          lat->set_flag(lc, global.flag(gcell));
          for (int i = 0; i < lbm::Q; ++i) {
            lat->set_f(i, lc, global.f(i, gcell));
          }
        }
      }
    }
    if (cfg_.storage != lbm::StorageMode::DoubleBuffer) {
      lat->convert_storage(cfg_.storage);
    }
    if (cfg_.thermal) {
      auto field = std::make_unique<lbm::ThermalField>(ld.local_dim(),
                                                       *cfg_.thermal);
      if (cfg_.initial_temperature) {
        GC_CHECK(static_cast<i64>(cfg_.initial_temperature->size()) ==
                 global.num_cells());
        for (int z = 0; z < dl.z; ++z) {
          for (int y = 0; y < dl.y; ++y) {
            for (int x = 0; x < dl.x; ++x) {
              const Int3 g = Int3{x, y, z} + ld.global.lo - ld.ghost_lo;
              field->set_t(lat->idx(x, y, z),
                           (*cfg_.initial_temperature)[static_cast<
                               std::size_t>(global.idx(g))]);
            }
          }
        }
      }
      thermals_.push_back(std::move(field));
      scratch_u_.emplace_back(
          static_cast<std::size_t>(ld.local_dim().volume()));
      scratch_force_.emplace_back();
    }
    locals_.push_back(std::move(lat));
  }

  if (cfg_.overlap) {
    splits_.resize(static_cast<std::size_t>(n));
    hidden_ms_.assign(static_cast<std::size_t>(n), 0.0);
    for (int node = 0; node < n; ++node) {
      splits_[static_cast<std::size_t>(node)].build(
          *locals_[static_cast<std::size_t>(node)],
          domains_[static_cast<std::size_t>(node)].ghost_lo,
          domains_[static_cast<std::size_t>(node)].ghost_hi);
    }
  }
}

double ParallelLbm::overlap_hidden_ms(int node) const {
  GC_CHECK_MSG(node >= 0 && node < decomp_.num_nodes(),
               "invalid node " << node);
  return cfg_.overlap ? hidden_ms_[static_cast<std::size_t>(node)] : 0.0;
}

void ParallelLbm::node_step(Comm& comm, int node, i64 global_step) {
  lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
  const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
  const netsim::NodeGrid& grid = cfg_.grid;
  const Int3 myc = grid.coords(node);
  obs::TraceRecorder* rec = cfg_.trace;

  if (cfg_.faults && cfg_.faults->should_crash(node, global_step)) {
    if (rec) rec->add_counter("ft.crashes", node, 1);
    throw netsim::RankCrashError("injected crash of rank " +
                                 std::to_string(node) + " at step " +
                                 std::to_string(global_step));
  }

  if (cfg_.thermal) {
    // Hybrid thermal step, matching lbm::Solver::step's ordering exactly:
    // (1) refresh the temperature ghosts with the neighbors' end-of-step
    // values, (2) FD temperature update using the pre-collision velocity,
    // (3) MRT collision, (4) Boussinesq force on owned cells.
    lbm::ThermalField& T = *thermals_[static_cast<std::size_t>(node)];
    {
      obs::ScopedSpan ex(rec, "exchange", node, "net");
      for (int k = 0; k < sched_.num_steps(); ++k) {
        int partner = -1;
        for (const netsim::ExchangePair& p :
             sched_.steps[static_cast<std::size_t>(k)]) {
          if (p.a == node) partner = p.b;
          if (p.b == node) partner = p.a;
        }
        if (partner < 0) continue;
        const Int3 off = grid.coords(partner) - myc;
        int face = -1;
        for (int a = 0; a < 3; ++a) {
          if (off[a] != 0) face = 2 * a + (off[a] > 0 ? 1 : 0);
        }
        comm.send(partner, netsim::kThermalFace, pack_face_scalar(T, lat, ld, face));
        unpack_face_scalar(T, lat, ld, face, comm.recv(partner, netsim::kThermalFace));
      }
    }
    obs::ScopedSpan collide_span(rec, "collide", node, "lbm");
    auto& u = scratch_u_[static_cast<std::size_t>(node)];
    lbm::compute_velocity_region(lat, u, ld.own_lo(), ld.own_hi());
    T.step(lat, u);
    lbm::collide_mrt_region(lat, lbm::MrtParams::standard(cfg_.tau),
                            ld.own_lo(), ld.own_hi());
    auto& force = scratch_force_[static_cast<std::size_t>(node)];
    T.buoyancy_force(lat, force);
    lbm::apply_force_first_order_region(lat, force, ld.own_lo(),
                                        ld.own_hi());
  } else if (cfg_.collision == lbm::CollisionKind::MRT) {
    obs::ScopedSpan collide_span(rec, "collide", node, "lbm");
    lbm::collide_mrt_region(lat, lbm::MrtParams::standard(cfg_.tau),
                            ld.own_lo(), ld.own_hi());
  } else {
    obs::ScopedSpan collide_span(rec, "collide", node, "lbm");
    lbm::collide_bgk_region(lat, lbm::BgkParams{cfg_.tau, Vec3{}},
                            ld.own_lo(), ld.own_hi());
  }

  if (cfg_.overlap) {
    overlap_exchange_and_stream(comm, node);
  } else {
    sync_exchange_and_stream(comm, node);
  }

  if (cfg_.sentinel &&
      (global_step + 1) % std::max(1, cfg_.sentinel->every) == 0) {
    obs::ScopedSpan span(rec, "sentinel", node, "ft");
    if (auto report =
            lbm::scan_divergence(lat, ld.own_lo(), ld.own_hi(),
                                 *cfg_.sentinel)) {
      if (rec) rec->add_counter("ft.divergences", node, 1);
      throw lbm::DivergenceError(*report, global_step + 1, node);
    }
  }
}

void ParallelLbm::sync_exchange_and_stream(Comm& comm, int node) {
  lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
  const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
  const netsim::NodeGrid& grid = cfg_.grid;
  const Int3 myc = grid.coords(node);
  obs::TraceRecorder* rec = cfg_.trace;
  auto& store = forward_store_[static_cast<std::size_t>(node)];

  for (int k = 0; k < sched_.num_steps(); ++k) {
    // One span per schedule step; pack/unpack nest inside it.
    obs::ScopedSpan ex(rec, "exchange", node, "net");
    // My partner in this step, if any.
    int partner = -1;
    for (const netsim::ExchangePair& p :
         sched_.steps[static_cast<std::size_t>(k)]) {
      if (p.a == node) partner = p.b;
      if (p.b == node) partner = p.a;
    }
    int face = -1;
    if (partner >= 0) {
      const Int3 off = grid.coords(partner) - myc;
      for (int a = 0; a < 3; ++a) {
        if (off[a] != 0) face = 2 * a + (off[a] > 0 ? 1 : 0);
      }
      netsim::Payload payload;
      {
        obs::ScopedSpan pack(rec, "pack", node, "net");
        payload = pack_face(lat, ld, face);
      }
      comm.send(partner, netsim::kFace, std::move(payload));
    }

    if (cfg_.indirect_diagonals) {
      for (const netsim::IndirectRoute& r : routes_) {
        if (r.src == node && r.first_step == k) {
          const Int3 off = grid.coords(r.dst) - myc;
          comm.send(r.via, netsim::kHop1Base + r.dst, pack_edge(lat, ld, off));
        }
        if (r.via == node && r.second_step == k) {
          auto it = store.find({r.src, r.dst});
          GC_CHECK_MSG(it != store.end(),
                       "missing forwarded chunk " << r.src << "->" << r.dst);
          comm.send(r.dst, netsim::kHop2Base + r.src, std::move(it->second));
          store.erase(it);
        }
      }
    }

    if (partner >= 0) {
      const netsim::Payload payload = comm.recv(partner, netsim::kFace);
      obs::ScopedSpan unpack(rec, "unpack", node, "net");
      unpack_face(lat, ld, face, payload);
    }
    if (cfg_.indirect_diagonals) {
      for (const netsim::IndirectRoute& r : routes_) {
        if (r.via == node && r.first_step == k) {
          store[{r.src, r.dst}] = comm.recv(r.src, netsim::kHop1Base + r.dst);
        }
        if (r.dst == node && r.second_step == k) {
          const Int3 off = grid.coords(r.src) - myc;
          unpack_edge(lat, ld, off, comm.recv(r.via, netsim::kHop2Base + r.src));
        }
      }
    }
  }

  if (!cfg_.indirect_diagonals) {
    // Ablation mode: direct exchange with all diagonal neighbors.
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        for (int sa = -1; sa <= 1; sa += 2) {
          for (int sb = -1; sb <= 1; sb += 2) {
            Int3 off{0, 0, 0};
            off[a] = sa;
            off[b] = sb;
            const int nb = decomp_.neighbor(node, off);
            if (nb < 0) continue;
            comm.send(nb, netsim::kDirectBase + node, pack_edge(lat, ld, off));
          }
        }
      }
    }
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        for (int sa = -1; sa <= 1; sa += 2) {
          for (int sb = -1; sb <= 1; sb += 2) {
            Int3 off{0, 0, 0};
            off[a] = sa;
            off[b] = sb;
            const int nb = decomp_.neighbor(node, off);
            if (nb < 0) continue;
            unpack_edge(lat, ld, off, comm.recv(nb, netsim::kDirectBase + nb));
          }
        }
      }
    }
  }

  {
    obs::ScopedSpan stream_span(rec, "stream", node, "lbm");
    lbm::stream(lat);
  }
}

void ParallelLbm::overlap_exchange_and_stream(Comm& comm, int node) {
  lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
  const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
  const netsim::NodeGrid& grid = cfg_.grid;
  const Int3 myc = grid.coords(node);
  obs::TraceRecorder* rec = cfg_.trace;
  const lbm::InnerOuterClass& split = splits_[static_cast<std::size_t>(node)];

  // Wire-compatible with the synchronous path: the same payloads travel
  // the same (src, dst, tag) channels, one message per channel per step —
  // only the ordering against local compute changes.
  struct FaceRecv {
    int face;
    netsim::Request req;
  };
  struct EdgeRecv {
    Int3 off;  // sender-relative offset, as unpack_edge expects
    netsim::Request req;
  };
  struct Hop1Recv {
    const netsim::IndirectRoute* route;
    netsim::Request req;
  };
  std::vector<FaceRecv> face_recvs;
  std::vector<EdgeRecv> edge_recvs;   // hop2 / direct-diagonal chunks
  std::vector<Hop1Recv> hop1_recvs;   // chunks to forward as via node

  {
    obs::ScopedSpan pack(rec, "overlap.pack", node, "overlap");
    for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
      comm.isend(nb, netsim::kFace, pack_face(lat, ld, face));
    }
    if (cfg_.indirect_diagonals) {
      for (const netsim::IndirectRoute& r : routes_) {
        if (r.src == node) {
          comm.isend(r.via, netsim::kHop1Base + r.dst,
                     pack_edge(lat, ld, grid.coords(r.dst) - myc));
        }
      }
    } else {
      for (int a = 0; a < 3; ++a) {
        for (int b = a + 1; b < 3; ++b) {
          for (int sa = -1; sa <= 1; sa += 2) {
            for (int sb = -1; sb <= 1; sb += 2) {
              Int3 off{0, 0, 0};
              off[a] = sa;
              off[b] = sb;
              const int nb = decomp_.neighbor(node, off);
              if (nb < 0) continue;
              comm.isend(nb, netsim::kDirectBase + node, pack_edge(lat, ld, off));
            }
          }
        }
      }
    }

    for (const auto& [face, nb] : decomp_.axial_neighbors(node)) {
      face_recvs.push_back({face, comm.irecv(nb, netsim::kFace)});
    }
    if (cfg_.indirect_diagonals) {
      for (const netsim::IndirectRoute& r : routes_) {
        if (r.via == node) {
          hop1_recvs.push_back({&r, comm.irecv(r.src, netsim::kHop1Base + r.dst)});
        }
        if (r.dst == node) {
          edge_recvs.push_back({grid.coords(r.src) - myc,
                                comm.irecv(r.via, netsim::kHop2Base + r.src)});
        }
      }
    } else {
      for (int a = 0; a < 3; ++a) {
        for (int b = a + 1; b < 3; ++b) {
          for (int sa = -1; sa <= 1; sa += 2) {
            for (int sb = -1; sb <= 1; sb += 2) {
              Int3 off{0, 0, 0};
              off[a] = sa;
              off[b] = sb;
              const int nb = decomp_.neighbor(node, off);
              if (nb < 0) continue;
              edge_recvs.push_back({off, comm.irecv(nb, netsim::kDirectBase + nb)});
            }
          }
        }
      }
    }
  }

  // The compute window the paper hides the network under (§4.4).
  const double t_post_us = world_.now_us();
  {
    obs::ScopedSpan inner(rec, "overlap.inner", node, "overlap");
    lbm::stream_inner(lat, split);
  }
  const double t_window_us = world_.now_us();

  double t_arrival_us = t_post_us;
  {
    obs::ScopedSpan wait(rec, "overlap.wait", node, "overlap");
    std::vector<netsim::Request> batch;
    for (const FaceRecv& fr : face_recvs) batch.push_back(fr.req);
    for (const Hop1Recv& hr : hop1_recvs) batch.push_back(hr.req);
    comm.wait_all(batch);
    // Second hop of the indirect diagonal routes: forward the chunks
    // this node carries for others before waiting on its own.
    for (Hop1Recv& hr : hop1_recvs) {
      comm.send(hr.route->dst, netsim::kHop2Base + hr.route->src,
                comm.wait(hr.req));
    }
    std::vector<netsim::Request> batch2;
    for (const EdgeRecv& er : edge_recvs) batch2.push_back(er.req);
    comm.wait_all(batch2);

    for (const FaceRecv& fr : face_recvs) {
      t_arrival_us = std::max(t_arrival_us, fr.req.complete_time_us());
    }
    for (const Hop1Recv& hr : hop1_recvs) {
      t_arrival_us = std::max(t_arrival_us, hr.req.complete_time_us());
    }
    for (const EdgeRecv& er : edge_recvs) {
      t_arrival_us = std::max(t_arrival_us, er.req.complete_time_us());
    }
  }
  // Hidden network time: the slice of the comm-in-flight interval that
  // fell inside the inner-compute window (measured, not modeled).
  hidden_ms_[static_cast<std::size_t>(node)] +=
      std::max(0.0, std::min(t_arrival_us, t_window_us) - t_post_us) * 1e-3;

  {
    obs::ScopedSpan unpack(rec, "overlap.unpack", node, "overlap");
    for (FaceRecv& fr : face_recvs) {
      unpack_face(lat, ld, fr.face, comm.wait(fr.req));
    }
    for (EdgeRecv& er : edge_recvs) {
      unpack_edge(lat, ld, er.off, comm.wait(er.req));
    }
  }

  {
    obs::ScopedSpan outer(rec, "overlap.outer", node, "overlap");
    lbm::stream_outer(lat, split);
  }
}

obs::RunStats ParallelLbm::run(int steps) {
  obs::RunStats rs;
  obs::TraceRecorder* rec = cfg_.trace;
  const std::size_t ev0 = rec ? rec->num_events() : 0;
  std::vector<netsim::RankTraffic> before;
  std::vector<netsim::ReliabilityStats> rel_before;
  if (rec) {
    for (int r = 0; r < world_.size(); ++r) {
      before.push_back(world_.rank_traffic(r));
      rel_before.push_back(world_.reliability_stats(r));
    }
  }

  const i64 step0 = step_;
  Timer t;
  world_.run([this, steps, step0](Comm& comm) {
    for (int s = 0; s < steps; ++s) {
      node_step(comm, comm.rank(), step0 + s);
    }
  });
  step_ += steps;  // only reached when every rank succeeded
  rs.steps = steps;
  rs.wall_ms = t.millis();

  if (rec) {
    rs.phases = rec->phase_totals(ev0);
    const auto real_bytes = static_cast<i64>(sizeof(Real));
    for (int r = 0; r < world_.size(); ++r) {
      const netsim::RankTraffic d = world_.rank_traffic(r);
      const netsim::RankTraffic& b = before[static_cast<std::size_t>(r)];
      rec->add_counter("mpi.messages", r, d.messages - b.messages);
      rec->add_counter("mpi.bytes", r,
                       (d.payload_values - b.payload_values) * real_bytes);
      rec->add_counter("mpi.barrier_waits", r,
                       d.barrier_waits - b.barrier_waits);
      if (cfg_.faults) {
        const netsim::ReliabilityStats rd = world_.reliability_stats(r);
        const netsim::ReliabilityStats& rb =
            rel_before[static_cast<std::size_t>(r)];
        rec->add_counter("ft.retransmits", r,
                         rd.retransmits - rb.retransmits);
        rec->add_counter("ft.corrupt_detected", r,
                         rd.corrupt_detected - rb.corrupt_detected);
        rec->add_counter("ft.duplicates_dropped", r,
                         rd.duplicates_dropped - rb.duplicates_dropped);
        rec->add_counter("ft.recv_timeouts", r, rd.timeouts - rb.timeouts);
      }
      if (cfg_.overlap) {
        rec->set_gauge("mpi.overlap_hidden_ms", r,
                       hidden_ms_[static_cast<std::size_t>(r)]);
      }
      rec->set_gauge(
          "lattice.bytes_allocated", r,
          static_cast<double>(
              locals_[static_cast<std::size_t>(r)]->storage_bytes()));
    }
  }
  return rs;
}

void ParallelLbm::restore_local(int node, const lbm::Lattice& saved) {
  GC_CHECK_MSG(node >= 0 && node < decomp_.num_nodes(),
               "invalid node " << node);
  lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
  GC_CHECK_MSG(saved.dim() == lat.dim(),
               "checkpoint dimensions " << saved.dim()
                                        << " do not match local lattice "
                                        << lat.dim());
  lat.copy_distributions_from(saved);
}

void ParallelLbm::reset_comm() {
  world_.reset();
  for (auto& store : forward_store_) store.clear();
}

void ParallelLbm::gather(lbm::Lattice& out) const {
  GC_CHECK(out.dim() == decomp_.lattice_dim());
  for (int node = 0; node < decomp_.num_nodes(); ++node) {
    const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
    const lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
    const SubDomain& b = ld.global;
    for (int z = b.lo.z; z < b.hi.z; ++z) {
      for (int y = b.lo.y; y < b.hi.y; ++y) {
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          const Int3 l = ld.to_local(Int3{x, y, z});
          const i64 lc = lat.idx(l);
          const i64 gcell = out.idx(x, y, z);
          for (int i = 0; i < lbm::Q; ++i) {
            out.set_f(i, gcell, lat.f(i, lc));
          }
        }
      }
    }
  }
}

void ParallelLbm::gather_temperature(std::vector<Real>& out) const {
  GC_CHECK_MSG(!thermals_.empty(), "no thermal field in this run");
  out.assign(static_cast<std::size_t>(decomp_.lattice_dim().volume()),
             Real(0));
  for (int node = 0; node < decomp_.num_nodes(); ++node) {
    const LocalDomain& ld = domains_[static_cast<std::size_t>(node)];
    const lbm::Lattice& lat = *locals_[static_cast<std::size_t>(node)];
    const lbm::ThermalField& T = *thermals_[static_cast<std::size_t>(node)];
    const SubDomain& b = ld.global;
    const Int3 d = decomp_.lattice_dim();
    for (int z = b.lo.z; z < b.hi.z; ++z) {
      for (int y = b.lo.y; y < b.hi.y; ++y) {
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          out[static_cast<std::size_t>(x + i64(d.x) * (y + i64(d.y) * z))] =
              T.t(lat.idx(ld.to_local(Int3{x, y, z})));
        }
      }
    }
  }
}

netsim::TrafficMatrix ParallelLbm::traffic_bytes_per_step() const {
  netsim::TrafficMatrix bytes(sched_.steps.size());
  const auto real_bytes = static_cast<i64>(sizeof(Real));

  for (std::size_t k = 0; k < sched_.steps.size(); ++k) {
    const auto& step = sched_.steps[k];
    bytes[k].assign(step.size(), 0);
    for (std::size_t pi = 0; pi < step.size(); ++pi) {
      const netsim::ExchangePair& p = step[pi];
      // Face payload (one direction; the exchange is symmetric).
      const Int3 off =
          cfg_.grid.coords(p.b) - cfg_.grid.coords(p.a);
      int face = -1;
      for (int a = 0; a < 3; ++a) {
        if (off[a] != 0) face = 2 * a + (off[a] > 0 ? 1 : 0);
      }
      bytes[k][pi] +=
          face_payload_size(domains_[static_cast<std::size_t>(p.a)], face) *
          real_bytes;
    }
  }

  // Piggybacked diagonal chunks ride the scheduled pair messages.
  for (const netsim::IndirectRoute& r : routes_) {
    auto add = [&](int step, int na, int nb, i64 sz) {
      const auto want = std::minmax(na, nb);
      const auto& pairs = sched_.steps[static_cast<std::size_t>(step)];
      for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        if (std::minmax(pairs[pi].a, pairs[pi].b) == want) {
          bytes[static_cast<std::size_t>(step)][pi] += sz;
          return;
        }
      }
      GC_CHECK_MSG(false, "route hop not found in schedule");
    };
    const Int3 off = cfg_.grid.coords(r.dst) - cfg_.grid.coords(r.src);
    const i64 sz =
        edge_payload_size(domains_[static_cast<std::size_t>(r.src)], off) *
        real_bytes;
    add(r.first_step, r.src, r.via, sz);
    add(r.second_step, r.via, r.dst, sz);
  }
  return bytes;
}

}  // namespace gc::core
