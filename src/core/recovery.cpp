#include "core/recovery.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "io/checkpoint.hpp"
#include "util/timer.hpp"

namespace gc::core {

namespace {
constexpr const char* kManifestName = "manifest.gcmf";

std::string rank_file_name(int node) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "rank_%04d.gclb", node);
  return buf;
}
}  // namespace

void save_cluster_checkpoint(const std::string& dir, const ParallelLbm& sim) {
  GC_CHECK_MSG(!sim.has_thermal(),
               "cluster checkpoints cover the flow state only; thermal runs "
               "are not snapshot-able yet");
  std::filesystem::create_directories(dir);

  io::ClusterManifest m;
  m.step = sim.current_step();
  m.grid = sim.config().grid.dims;
  m.lattice_dim = sim.decomposition().lattice_dim();
  const int n = sim.decomposition().num_nodes();
  for (int node = 0; node < n; ++node) {
    const std::string name = rank_file_name(node);
    io::save_checkpoint(dir + "/" + name, sim.local(node));
    m.rank_files.push_back(name);
  }
  // The manifest is the commit point: rank files land first, and the
  // manifest itself goes through tmp-file + rename.
  io::save_manifest(dir + "/" + kManifestName, m);
}

i64 load_cluster_checkpoint(const std::string& dir, ParallelLbm& sim) {
  const io::ClusterManifest m = io::load_manifest(dir + "/" + kManifestName);
  GC_CHECK_MSG(m.grid == sim.config().grid.dims,
               "checkpoint node grid " << m.grid
                                       << " does not match the simulation");
  GC_CHECK_MSG(m.lattice_dim == sim.decomposition().lattice_dim(),
               "checkpoint lattice " << m.lattice_dim
                                     << " does not match the simulation");
  GC_CHECK_MSG(static_cast<int>(m.rank_files.size()) ==
                   sim.decomposition().num_nodes(),
               "checkpoint has " << m.rank_files.size() << " ranks, expected "
                                 << sim.decomposition().num_nodes());
  for (int node = 0; node < sim.decomposition().num_nodes(); ++node) {
    // The v3 header records the storage mode the snapshot was taken in,
    // so the load auto-detects; converting covers a restore across modes
    // (e.g. an old DoubleBuffer snapshot into an AA simulation).
    lbm::Lattice saved = io::load_checkpoint(
        dir + "/" + m.rank_files[static_cast<std::size_t>(node)]);
    if (saved.storage_mode() != sim.local(node).storage_mode()) {
      saved.convert_storage(sim.local(node).storage_mode());
    }
    sim.restore_local(node, saved);
  }
  sim.set_current_step(m.step);
  return m.step;
}

RecoveryDriver::RecoveryDriver(ParallelLbm& sim, RecoveryConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  GC_CHECK_MSG(!cfg_.dir.empty(), "RecoveryConfig.dir is required");
  GC_CHECK_MSG(cfg_.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  GC_CHECK_MSG(cfg_.max_rollbacks >= 0, "max_rollbacks must be >= 0");
}

void RecoveryDriver::rollback(RecoveryReport& report, i64 done,
                              const std::string& what) {
  // A cancelled run (deadline watchdog, service shutdown) must not be
  // healed: the abort that killed it would just fire again, and the
  // caller is waiting for the failure to surface.
  if (cfg_.cancelled && cfg_.cancelled()) throw;  // rethrow the failure
  ++report.rollbacks;
  if (report.rollbacks > cfg_.max_rollbacks) throw;  // rethrow the failure
  obs::TraceRecorder* rec = cfg_.trace;
  Timer t;
  i64 resumed = 0;
  {
    obs::ScopedSpan span(rec, "rollback", 0, "ft");
    sim_.reset_comm();
    resumed = load_cluster_checkpoint(cfg_.dir, sim_);
  }
  report.recovery_ms += t.millis();
  report.events.push_back(RecoveryEvent{done, resumed, what});
  if (rec) {
    rec->add_counter("ft.rollbacks", 0, 1);
    rec->set_gauge("ft.recovery_ms", 0, report.recovery_ms);
  }
}

RecoveryReport RecoveryDriver::run(i64 steps) {
  GC_CHECK_MSG(steps >= 0, "negative step count");
  obs::TraceRecorder* rec = cfg_.trace;
  RecoveryReport report;
  const i64 target = sim_.current_step() + steps;

  auto snapshot = [&] {
    obs::ScopedSpan span(rec, "checkpoint", 0, "ft");
    save_cluster_checkpoint(cfg_.dir, sim_);
    ++report.checkpoints;
    if (rec) rec->add_counter("ft.checkpoints", 0, 1);
  };

  snapshot();  // the rollback anchor for the first chunk
  while (sim_.current_step() < target) {
    if (cfg_.cancelled && cfg_.cancelled()) {
      throw netsim::CommAborted("recovery cancelled between chunks");
    }
    const i64 chunk = std::min<i64>(cfg_.checkpoint_every,
                                    target - sim_.current_step());
    try {
      sim_.run(static_cast<int>(chunk));
      if (sim_.current_step() < target) snapshot();
    } catch (const netsim::CommError& e) {
      rollback(report, sim_.current_step(), e.what());
    } catch (const netsim::RankCrashError& e) {
      rollback(report, sim_.current_step(), e.what());
    } catch (const lbm::DivergenceError& e) {
      rollback(report, sim_.current_step(), e.what());
    }
  }
  report.steps = steps;
  return report;
}

}  // namespace gc::core
