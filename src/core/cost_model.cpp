#include "core/cost_model.hpp"

namespace gc::core {

NodePerfProfile NodePerfProfile::paper_node() {
  NodePerfProfile p;
  p.name = "Xeon 2.4GHz + GeForce FX 5800 Ultra (AGP 8x)";
  p.cpu_ns_per_cell = 1420e6 / (80.0 * 80.0 * 80.0);  // 2773 ns
  p.cpu_jitter_coef = 0.0028;                         // 1420 -> 1440 ms
  p.gpu_ns_per_cell = 214e6 / (80.0 * 80.0 * 80.0);   // 418 ns
  p.overlap_fraction = 120.0 / 214.0;
  p.gather_pass_s = 5.0e-3;
  p.bus = gpusim::BusSpec::agp8x();
  return p;
}

NodePerfProfile NodePerfProfile::pcie_node() {
  NodePerfProfile p = paper_node();
  p.name = "Xeon 2.4GHz + GeForce FX 5800 Ultra (PCI-Express x16)";
  p.bus = gpusim::BusSpec::pcie_x16();
  return p;
}

NodePerfProfile NodePerfProfile::gf6800_node() {
  NodePerfProfile p = paper_node();
  p.name = "Xeon 2.4GHz + GeForce 6800 Ultra (PCI-Express x16)";
  p.gpu_ns_per_cell /= 2.5;  // "already at least 2.5 times faster"
  p.gather_pass_s /= 2.5;
  p.bus = gpusim::BusSpec::pcie_x16();
  return p;
}

NodePerfProfile NodePerfProfile::sse_cpu_node() {
  NodePerfProfile p = paper_node();
  p.name = "Xeon 2.4GHz with SSE + GeForce FX 5800 Ultra (AGP 8x)";
  p.cpu_ns_per_cell /= 2.5;  // "supposed to be about 2 to 3 times faster"
  return p;
}

}  // namespace gc::core
