// Partition leasing for many-query workloads: the cluster is a shared
// resource (Feichtinger et al.'s patch-based GPU-CPU design and Calore et
// al.'s large-cluster scaling study both schedule many independent jobs
// onto one machine), so independent scenarios must be able to borrow a
// slice of it, run to completion, and hand it back. A PartitionPool owns
// a fixed number of partition slots; acquiring one yields a Lease whose
// run() executes a global lattice on that partition — core::ParallelLbm
// (one MpiLite world per run) on the host backend, core::GpuClusterLbm on
// the simulated-GPU backend — and gathers the result back in place.
// Bit-exactness is inherited: both backends are validated against the
// serial reference, so *which* partition serves a request can never
// change the answer.
#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

#include "lbm/lattice.hpp"
#include "lbm/run_params.hpp"
#include "netsim/schedule.hpp"
#include "obs/trace.hpp"

namespace gc::core {

/// Which cluster implementation a partition runs.
enum class ClusterBackend {
  Host,          ///< core::ParallelLbm (one thread per logical node)
  SimulatedGpu,  ///< core::GpuClusterLbm (one simulated GPU per node)
};

/// Shape shared by every partition in a pool.
struct PartitionSpec {
  /// Node grid *per partition* — each leased run decomposes its lattice
  /// across this many logical cluster nodes.
  netsim::NodeGrid grid{};
  ClusterBackend backend = ClusterBackend::Host;
  /// Execute the §4.4 compute–communication overlap inside each run.
  bool overlap = false;
  /// Per-rank spans/counters from leased runs land here (tid = rank
  /// within the partition). Not owned; may be null.
  obs::TraceRecorder* trace = nullptr;
};

/// A fixed pool of cluster partitions. acquire() blocks until a slot is
/// free; the returned Lease releases it on destruction (RAII), so a
/// worker that throws mid-scenario can never leak a partition.
class PartitionPool {
 public:
  PartitionPool(int partitions, PartitionSpec spec);

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    /// The leased slot index in [0, pool size).
    int partition() const { return slot_; }

    /// Runs `steps` LBM steps of `state` on the leased partition and
    /// gathers the result back into `state`. The wall time always lands
    /// in the returned stats; per-phase spans require a recorder on the
    /// pool spec. SimulatedGpu requires BGK + DoubleBuffer (the texture
    /// pipeline owns its own storage).
    obs::RunStats run(lbm::Lattice& state, int steps,
                      const lbm::RunParams& params) const;

   private:
    friend class PartitionPool;
    Lease(PartitionPool* pool, int slot) : pool_(pool), slot_(slot) {}
    PartitionPool* pool_;
    int slot_;
  };

  Lease acquire();

  int size() const { return static_cast<int>(busy_.size()); }
  /// Slots currently free (snapshot; racy by nature).
  int idle() const;
  const PartitionSpec& spec() const { return spec_; }

 private:
  void release(int slot);

  PartitionSpec spec_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> busy_;
};

}  // namespace gc::core
