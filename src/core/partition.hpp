// Partition leasing for many-query workloads: the cluster is a shared
// resource (Feichtinger et al.'s patch-based GPU-CPU design and Calore et
// al.'s large-cluster scaling study both schedule many independent jobs
// onto one machine), so independent scenarios must be able to borrow a
// slice of it, run to completion, and hand it back. A PartitionPool owns
// a fixed number of partition slots; acquiring one yields a Lease whose
// run() executes a global lattice on that partition — core::ParallelLbm
// (one MpiLite world per run) on the host backend, core::GpuClusterLbm on
// the simulated-GPU backend — and gathers the result back in place.
// Bit-exactness is inherited: both backends are validated against the
// serial reference, so *which* partition serves a request can never
// change the answer.
//
// Resilience: a per-slot netsim::FaultSpec (host backend) switches leased
// runs onto the reliable exchange under a RecoveryDriver, so transient
// faults roll back in place and terminal ones surface as typed errors.
// The pool keeps a health score per slot — repeated failures trip a
// circuit breaker that quarantines the partition, and a timed probation
// re-admits it after a healthy probe — so a sick partition degrades the
// pool instead of poisoning every request routed to it. A leased run can
// be aborted from outside (kill flag + MpiLite world abort), which is how
// deadline watchdogs cancel a stuck partition instead of waiting forever.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lbm/lattice.hpp"
#include "lbm/run_params.hpp"
#include "lbm/sentinel.hpp"
#include "netsim/mpilite.hpp"
#include "netsim/schedule.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace gc::core {

class ParallelLbm;

/// A leased run was cancelled from outside (watchdog deadline abort or
/// pool shutdown) rather than failing on its own. Callers translate this
/// into their own vocabulary (deadline exceeded / service stopped); it is
/// never a partition-health signal.
class LeaseAbortedError : public Error {
 public:
  using Error::Error;
};

/// Which cluster implementation a partition runs.
enum class ClusterBackend {
  Host,          ///< core::ParallelLbm (one thread per logical node)
  SimulatedGpu,  ///< core::GpuClusterLbm (one simulated GPU per node)
};

/// Shape shared by every partition in a pool.
struct PartitionSpec {
  /// Node grid *per partition* — each leased run decomposes its lattice
  /// across this many logical cluster nodes.
  netsim::NodeGrid grid{};
  ClusterBackend backend = ClusterBackend::Host;
  /// Execute the §4.4 compute–communication overlap inside each run.
  bool overlap = false;
  /// Per-rank spans/counters from leased runs land here (tid = rank
  /// within the partition). Not owned; may be null.
  obs::TraceRecorder* trace = nullptr;

  // --- resilience (host backend; used when a slot has a FaultSpec) ---
  /// Retransmit policy of the reliable exchange on faulted slots.
  netsim::ReliabilityConfig reliability;
  /// Per-step divergence scan on faulted slots (unset = off).
  std::optional<lbm::SentinelThresholds> sentinel;
  /// Rollback checkpoints for faulted runs land under
  /// `<recovery_dir>/slot_<N>`. Required before set_faults().
  std::string recovery_dir;
  int checkpoint_every = 25;  ///< steps between rollback snapshots
  int max_rollbacks = 4;      ///< RecoveryDriver give-up budget per run
  /// Consecutive failures that trip the quarantine breaker on a slot.
  int failure_threshold = 3;
  /// Quarantine cooldown before the slot is handed out again as a probe.
  double probation_ms = 250;
  /// Pool-health metrics (service.quarantined counter, service.degraded
  /// gauge) land here. Not owned; may be null. Kept separate from
  /// `trace` so per-rank run tracing and service-level health tracing
  /// can go to different recorders.
  obs::TraceRecorder* health_trace = nullptr;
};

/// A fixed pool of cluster partitions. acquire() blocks until a slot is
/// free; the returned Lease releases it on destruction (RAII), so a
/// worker that throws mid-scenario can never leak a partition.
class PartitionPool {
 public:
  PartitionPool(int partitions, PartitionSpec spec);

  /// Circuit-breaker state of one slot. Healthy slots are preferred by
  /// acquire; quarantined slots are never handed out; a quarantined slot
  /// whose probation window elapsed is handed out as a probe and the
  /// next report_success / report_failure decides re-admission.
  enum class Health { kHealthy, kQuarantined, kProbation };

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    /// The leased slot index in [0, pool size).
    int partition() const { return slot_; }

    /// Monotonic id of this particular lease of the slot. abort_lease
    /// takes it so a stale abort decision cannot kill whoever leased
    /// the slot next.
    u64 lease_id() const { return seq_; }

    /// Runs `steps` LBM steps of `state` on the leased partition and
    /// gathers the result back into `state`. The wall time always lands
    /// in the returned stats; per-phase spans require a recorder on the
    /// pool spec. SimulatedGpu requires BGK + DoubleBuffer (the texture
    /// pipeline owns its own storage). On a slot with a FaultSpec the
    /// run executes under RecoveryDriver: transient faults roll back in
    /// place, terminal ones (CommTimeout, RankCrashError, DivergenceError
    /// past max_rollbacks) escape as those typed errors. An external
    /// abort (abort_lease / abort_all) surfaces as LeaseAbortedError.
    obs::RunStats run(lbm::Lattice& state, int steps,
                      const lbm::RunParams& params) const;

   private:
    friend class PartitionPool;
    Lease(PartitionPool* pool, int slot, u64 seq)
        : pool_(pool), slot_(slot), seq_(seq) {}
    PartitionPool* pool_;
    int slot_;
    u64 seq_ = 0;
  };

  /// Blocks until an eligible (non-quarantined) slot is free. Throws
  /// LeaseAbortedError once abort_all() has been called.
  Lease acquire() GC_EXCLUDES(mu_);

  /// Bounded acquire: waits in short slices, re-evaluating probation
  /// promotions and invoking `give_up` between slices; returns nullopt
  /// once give_up() is true. `exclude` is a routing preference — retries
  /// want a *different* partition — not a hard ban: when every other
  /// slot is quarantined, the excluded slot beats hanging forever.
  /// Throws LeaseAbortedError once abort_all() has been called.
  std::optional<Lease> acquire_until(int exclude,
                                     const std::function<bool()>& give_up)
      GC_EXCLUDES(mu_);

  /// Attaches a fault specification to one slot (host backend only; not
  /// owned, must outlive the pool's runs). Requires spec.recovery_dir.
  /// Null detaches.
  void set_faults(int slot, netsim::FaultSpec* faults) GC_EXCLUDES(mu_);

  /// Health reports from the lease's user (the pool cannot tell a
  /// request-level failure from a partition-level one; the caller can).
  /// Failure increments the slot's consecutive-failure count and trips
  /// the quarantine breaker at spec.failure_threshold; success resets
  /// the count and re-admits a probing slot.
  void report_success(int slot) GC_EXCLUDES(mu_);
  void report_failure(int slot) GC_EXCLUDES(mu_);

  /// Current breaker state of one slot (promotes an elapsed probation
  /// timer first, so the answer reflects what acquire would see).
  Health health(int slot) GC_EXCLUDES(mu_);
  /// Slots currently quarantined (the service.degraded gauge's value).
  int quarantined() const GC_EXCLUDES(mu_);

  /// Aborts whatever run is active on `slot` (now and until the lease is
  /// released): the run fails with LeaseAbortedError instead of running
  /// to completion. No-op on an idle slot. A non-zero `lease` restricts
  /// the abort to that exact lease_id(), so a decision made against a
  /// snapshot of the pool cannot kill a later tenant of the slot.
  void abort_lease(int slot, u64 lease = 0) GC_EXCLUDES(mu_);

  /// Shuts the pool down: every active run is aborted and every blocked
  /// or future acquire throws LeaseAbortedError.
  void abort_all() GC_EXCLUDES(mu_);

  /// Fixed at construction, so readable without the lock.
  int size() const { return n_slots_; }
  /// Slots currently free (snapshot; racy by nature).
  int idle() const GC_EXCLUDES(mu_);
  const PartitionSpec& spec() const { return spec_; }

 private:
  struct Slot {
    bool busy = false;
    /// Abort requested for the current lease; cleared on release.
    bool kill = false;
    /// lease_id() of the current/most recent lease of this slot.
    u64 lease_seq = 0;
    netsim::FaultSpec* faults = nullptr;
    Health health = Health::kHealthy;
    int consecutive_failures = 0;
    double quarantined_at_ms = 0;
    /// The ParallelLbm currently running on this slot (host backend),
    /// registered by Lease::run so abort_lease can reach its world.
    ParallelLbm* active = nullptr;
  };

  void release(int slot) GC_EXCLUDES(mu_);
  /// Registers/unregisters the active simulation; applies a pending
  /// kill to a just-registered one.
  void register_active(int slot, ParallelLbm* sim) GC_EXCLUDES(mu_);
  bool kill_requested(int slot) const GC_EXCLUDES(mu_);
  netsim::FaultSpec* slot_faults(int slot) const GC_EXCLUDES(mu_);
  std::string slot_recovery_dir(int slot) const;
  /// Promotes quarantined slots whose probation elapsed. Caller holds mu_.
  void promote_probations_locked() GC_REQUIRES(mu_);
  /// Best eligible free slot (-1 if none): healthy first, then probation,
  /// then the excluded slot as a last resort. Caller holds mu_.
  int find_slot_locked(int exclude) GC_REQUIRES(mu_);
  /// Quarantine transitions + health metrics. Caller holds mu_.
  void quarantine_locked(int slot) GC_REQUIRES(mu_);
  void publish_degraded_locked() GC_REQUIRES(mu_);

  PartitionSpec spec_;
  Timer clock_;  ///< probation timestamps
  int n_slots_ = 0;
  /// Canonical lock order: abort_lease / abort_all reach into the active
  /// run's MpiLite world (to wake blocked ranks) while holding mu_, so
  /// the pool lock always precedes the communicator lock.
  mutable std::mutex mu_ GC_ACQUIRED_BEFORE(netsim::MpiLite::mu_);
  std::condition_variable cv_;
  std::vector<Slot> slots_ GC_GUARDED_BY(mu_);
  u64 lease_counter_ GC_GUARDED_BY(mu_) = 0;
  bool stopped_ GC_GUARDED_BY(mu_) = false;
};

}  // namespace gc::core
