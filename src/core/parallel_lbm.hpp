// The distributed LBM of Section 4.3, functionally: each logical cluster
// node owns a block of the lattice (plus ghost layers), collides locally,
// exchanges border distributions following the pairwise communication
// schedule — diagonal traffic routed indirectly in two axial hops — and
// streams. Produces results identical to the serial lbm reference; the
// matching *timing* comes from core::ClusterSimulator.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/border_exchange.hpp"
#include "core/decomposition.hpp"
#include "lbm/collision.hpp"
#include "lbm/solver.hpp"
#include "netsim/mpilite.hpp"
#include "netsim/schedule.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace gc::core {

/// Embeds lbm::RunParams (tau / collision / storage — see run_params.hpp);
/// `storage` selects the per-node backend: double-buffered or the
/// in-place AA pattern (half the footprint per rank, bit-exact,
/// wire-compatible — pack/unpack go through the phase-transparent
/// accessors).
struct ParallelConfig : lbm::RunParams {
  netsim::NodeGrid grid;
  /// Hybrid thermal model (forces MRT): the finite-difference temperature
  /// field runs distributed too, exchanging one ghost value per border
  /// cell per step (the 7-point stencil needs axial faces only).
  std::optional<lbm::ThermalParams> thermal;
  /// Initial global temperature field (cell-indexed); defaults to t_ref.
  const std::vector<Real>* initial_temperature = nullptr;
  /// When false, diagonal data is exchanged directly between second-
  /// nearest neighbors instead of the paper's two-hop indirect routing
  /// (functional results are identical; used by the schedule ablation).
  bool indirect_diagonals = true;
  /// Places the decomposition's cut planes on per-axis fluid-cell counts
  /// (hemelb-style coordinate partitioning) instead of uniformly, so
  /// solid-heavy geometry stops inflating one rank's fluid load. Pure
  /// load-balance knob: the node-grid topology and every simulated value
  /// are unchanged.
  bool fluid_balanced = false;
  /// Executes the paper's §4.4 compute–communication overlap for real:
  /// each step posts the border isend/irecvs first, streams the inner
  /// cells (those that cannot read a ghost texel) while the messages are
  /// in flight, then wait_all + ghost unpack + outer-shell streaming.
  /// Bit-identical to the synchronous path and the serial reference —
  /// the pull pattern writes each cell exactly once, so phase order
  /// cannot change a value. Emits overlap.pack / overlap.inner /
  /// overlap.wait / overlap.unpack / overlap.outer spans and the
  /// mpi.overlap_hidden_ms gauge when a recorder is attached.
  bool overlap = false;
  /// When set, every rank emits collide / pack / unpack / exchange /
  /// stream spans here (tid = rank), and run() publishes per-rank
  /// mpi.messages / mpi.bytes / mpi.barrier_waits counters. Null = zero
  /// instrumentation cost. Not owned.
  obs::TraceRecorder* trace = nullptr;
  /// Fault injection: when set, MpiLite switches to the reliable
  /// sequence-numbered/checksummed envelope protocol and applies the
  /// spec's message and rank faults. Not owned (and mutable: crash
  /// faults are one-shot, counters accumulate). Null = perfect network,
  /// zero protocol overhead.
  netsim::FaultSpec* faults = nullptr;
  /// Retransmit policy used when `faults` is attached.
  netsim::ReliabilityConfig reliability;
  /// When set, each rank scans its owned region after every
  /// `sentinel->every`-th step and throws DivergenceError on NaN or
  /// density blow-up. Unset = zero cost.
  std::optional<lbm::SentinelThresholds> sentinel;
};

class ParallelLbm {
 public:
  /// Scatters `global` (flags, boundary setup, current distributions)
  /// across the node grid. Decomposed axes must not be periodic, and the
  /// global lattice must not use curved links.
  ParallelLbm(const lbm::Lattice& global, ParallelConfig cfg);

  const Decomposition3& decomposition() const { return decomp_; }
  const netsim::CommSchedule& schedule() const { return sched_; }

  /// Advances all nodes `steps` LBM steps, one MpiLite rank per node.
  /// The summary carries wall time and, when a recorder is attached,
  /// per-phase span totals for just this run. Under an attached
  /// FaultSpec this may throw CommError / RankCrashError /
  /// DivergenceError; the step counter only advances on success, and
  /// reset_comm() + restore_local() roll the simulation back.
  obs::RunStats run(int steps);

  /// Global LBM steps completed so far (advances only on successful
  /// run() calls; the recovery layer rewinds it on rollback).
  i64 current_step() const { return step_; }
  void set_current_step(i64 step) { step_ = step; }

  /// Overwrites node `node`'s distributions with `saved` (same local
  /// dimensions; flags/BCs are configuration and stay untouched). The
  /// restore half of a checkpoint rollback.
  void restore_local(int node, const lbm::Lattice& saved);

  /// Clears the communicator after a failed run (abort flag, in-flight
  /// messages, protocol state) plus any half-forwarded diagonal chunks,
  /// so a restored simulation can run again.
  void reset_comm();

  /// Aborts the communicator world from outside the run: every rank
  /// blocked in recv/barrier wakes with CommAborted and the run() call
  /// fails promptly. The cancellation hook for deadline watchdogs; pair
  /// with reset_comm() before running again.
  void abort_comm() GC_EXCLUDES(netsim::MpiLite::mu_) { world_.abort(); }

  /// Reassembles the owned regions into a global lattice.
  void gather(lbm::Lattice& out) const;

  /// Reassembles the temperature field (thermal runs only).
  void gather_temperature(std::vector<Real>& out) const;

  /// Access to a node's local lattice (tests).
  const lbm::Lattice& local(int node) const { return *locals_[static_cast<std::size_t>(node)]; }

  bool has_thermal() const { return !thermals_.empty(); }

  const ParallelConfig& config() const { return cfg_; }

  /// Bytes exchanged per schedule step per pair (face payloads plus any
  /// piggybacked diagonal hops) — the input for netsim::SwitchModel.
  /// Same shape and name as ClusterSimulator::traffic_bytes_per_step, so
  /// the measured and analytic accountings can be diffed entry-by-entry.
  netsim::TrafficMatrix traffic_bytes_per_step() const;

  /// Total payload values routed through MpiLite so far.
  i64 total_payload_values() const { return world_.total_payload_values(); }

  /// The underlying communicator world (read-only): per-rank traffic and
  /// reliability tallies for the determinism/equivalence harnesses.
  const netsim::MpiLite& world() const { return world_; }

  /// Cumulative network time node `node` hid under its inner-cell
  /// streaming window (overlap mode only; 0 otherwise). Measured from
  /// message enqueue stamps, not modeled: the overlap of the
  /// comm-in-flight interval with the inner-compute window.
  double overlap_hidden_ms(int node) const;

 private:
  void node_step(netsim::Comm& comm, int node, i64 global_step);
  /// The paper's synchronous ordering: schedule-step exchange loop, then
  /// a full-lattice stream.
  void sync_exchange_and_stream(netsim::Comm& comm, int node);
  /// The overlap-mode border exchange + partitioned streaming (replaces
  /// the synchronous schedule loop + full-lattice stream).
  void overlap_exchange_and_stream(netsim::Comm& comm, int node);

  ParallelConfig cfg_;
  Decomposition3 decomp_;
  netsim::CommSchedule sched_;
  std::vector<netsim::IndirectRoute> routes_;
  std::vector<LocalDomain> domains_;
  std::vector<std::unique_ptr<lbm::Lattice>> locals_;
  /// Per-node inner/outer split of the bulk spans (overlap mode only;
  /// built once in the ctor — node flags never change afterwards).
  std::vector<lbm::InnerOuterClass> splits_;
  /// Per-node cumulative hidden network time (overlap mode only).
  std::vector<double> hidden_ms_;
  std::vector<std::unique_ptr<lbm::ThermalField>> thermals_;
  std::vector<std::vector<Vec3>> scratch_u_;
  std::vector<std::vector<Vec3>> scratch_force_;
  netsim::MpiLite world_;
  i64 step_ = 0;
  // Forwarded diagonal chunks awaiting their second hop, per via node,
  // keyed by (src, dst).
  std::vector<std::map<std::pair<int, int>, netsim::Payload>> forward_store_;
};

}  // namespace gc::core
