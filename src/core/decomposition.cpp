#include "core/decomposition.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "lbm/lattice.hpp"

namespace gc::core {

namespace {
/// Start of block k when splitting `extent` into `parts` near-equal pieces.
int split_start(int extent, int parts, int k) {
  const int base = extent / parts;
  const int rem = extent % parts;
  return k * base + std::min(k, rem);
}

/// Cut positions (size parts+1, cuts[0]=0, cuts[parts]=extent) splitting a
/// per-slab weight profile into `parts` contiguous runs of near-equal
/// total weight. Each cut lands where the prefix sum is closest to the
/// ideal k/parts fraction, clamped so every part keeps at least one slab.
std::vector<int> balanced_cuts(const std::vector<i64>& w, int parts) {
  const int extent = static_cast<int>(w.size());
  std::vector<i64> pref(static_cast<std::size_t>(extent) + 1, 0);
  for (int i = 0; i < extent; ++i) {
    pref[static_cast<std::size_t>(i) + 1] =
        pref[static_cast<std::size_t>(i)] + w[static_cast<std::size_t>(i)];
  }
  const double total = static_cast<double>(pref[static_cast<std::size_t>(extent)]);
  std::vector<int> cuts(static_cast<std::size_t>(parts) + 1, 0);
  cuts[static_cast<std::size_t>(parts)] = extent;
  for (int k = 1; k < parts; ++k) {
    const double target = total * k / parts;
    const int lo = cuts[static_cast<std::size_t>(k) - 1] + 1;
    const int hi = extent - (parts - k);
    int best = lo;
    double best_d = std::abs(static_cast<double>(pref[static_cast<std::size_t>(lo)]) - target);
    for (int i = lo + 1; i <= hi; ++i) {
      const double d =
          std::abs(static_cast<double>(pref[static_cast<std::size_t>(i)]) - target);
      if (d < best_d) {
        best = i;
        best_d = d;
      }
    }
    cuts[static_cast<std::size_t>(k)] = best;
  }
  return cuts;
}
}  // namespace

Decomposition3::Decomposition3(Int3 lattice_dim, netsim::NodeGrid grid)
    : dim_(lattice_dim), grid_(grid) {
  GC_CHECK_MSG(dim_.x >= grid.dims.x && dim_.y >= grid.dims.y &&
                   dim_.z >= grid.dims.z,
               "lattice " << dim_ << " too small for node grid " << grid.dims);
  const int n = grid.num_nodes();
  blocks_.resize(static_cast<std::size_t>(n));
  for (int node = 0; node < n; ++node) {
    const Int3 c = grid.coords(node);
    SubDomain b;
    b.node = node;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] = split_start(dim_[a], grid.dims[a], c[a]);
      b.hi[a] = split_start(dim_[a], grid.dims[a], c[a] + 1);
    }
    blocks_[static_cast<std::size_t>(node)] = b;
  }
}

Decomposition3::Decomposition3(Int3 lattice_dim, netsim::NodeGrid grid,
                               const std::vector<u8>& flags)
    : dim_(lattice_dim), grid_(grid) {
  GC_CHECK_MSG(dim_.x >= grid.dims.x && dim_.y >= grid.dims.y &&
                   dim_.z >= grid.dims.z,
               "lattice " << dim_ << " too small for node grid " << grid.dims);
  GC_CHECK_MSG(static_cast<i64>(flags.size()) == dim_.volume(),
               "flag array size " << flags.size()
                                  << " does not match lattice " << dim_);
  // Per-axis marginal non-solid counts (the coordinate histograms
  // hemelb's xyzpart partitions on).
  std::array<std::vector<i64>, 3> marginal;
  for (int a = 0; a < 3; ++a) {
    marginal[static_cast<std::size_t>(a)].assign(
        static_cast<std::size_t>(dim_[a]), 0);
  }
  constexpr u8 kSolid = static_cast<u8>(lbm::CellType::Solid);
  std::size_t c = 0;
  for (int z = 0; z < dim_.z; ++z) {
    for (int y = 0; y < dim_.y; ++y) {
      for (int x = 0; x < dim_.x; ++x, ++c) {
        if (flags[c] == kSolid) continue;
        ++marginal[0][static_cast<std::size_t>(x)];
        ++marginal[1][static_cast<std::size_t>(y)];
        ++marginal[2][static_cast<std::size_t>(z)];
      }
    }
  }
  std::array<std::vector<int>, 3> cuts;
  for (int a = 0; a < 3; ++a) {
    cuts[static_cast<std::size_t>(a)] =
        balanced_cuts(marginal[static_cast<std::size_t>(a)], grid.dims[a]);
  }
  const int n = grid.num_nodes();
  blocks_.resize(static_cast<std::size_t>(n));
  for (int node = 0; node < n; ++node) {
    const Int3 gpos = grid.coords(node);
    SubDomain b;
    b.node = node;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] =
          cuts[static_cast<std::size_t>(a)][static_cast<std::size_t>(gpos[a])];
      b.hi[a] =
          cuts[static_cast<std::size_t>(a)][static_cast<std::size_t>(gpos[a]) + 1];
    }
    blocks_[static_cast<std::size_t>(node)] = b;
  }
}

const SubDomain& Decomposition3::block(int node) const {
  GC_CHECK(node >= 0 && node < num_nodes());
  return blocks_[static_cast<std::size_t>(node)];
}

int Decomposition3::neighbor(int node, Int3 off) const {
  const Int3 c = grid_.coords(node) + off;
  if (!grid_.contains(c)) return -1;
  return grid_.id(c);
}

std::vector<std::pair<int, int>> Decomposition3::axial_neighbors(
    int node) const {
  std::vector<std::pair<int, int>> out;
  for (int face = 0; face < 6; ++face) {
    Int3 off{0, 0, 0};
    off[face / 2] = (face % 2 == 0) ? -1 : +1;
    const int nb = neighbor(node, off);
    if (nb >= 0) out.emplace_back(face, nb);
  }
  return out;
}

i64 Decomposition3::face_area(int node, int face) const {
  Int3 off{0, 0, 0};
  const int axis = face / 2;
  off[axis] = (face % 2 == 0) ? -1 : +1;
  if (neighbor(node, off) < 0) return 0;
  const Int3 s = block(node).size();
  switch (axis) {
    case 0: return i64(s.y) * s.z;
    case 1: return i64(s.x) * s.z;
    default: return i64(s.x) * s.y;
  }
}

bool Decomposition3::tiles_domain() const {
  std::vector<u8> hit(static_cast<std::size_t>(dim_.volume()), 0);
  for (const SubDomain& b : blocks_) {
    if (b.lo.x < 0 || b.lo.y < 0 || b.lo.z < 0 || b.hi.x > dim_.x ||
        b.hi.y > dim_.y || b.hi.z > dim_.z) {
      return false;
    }
    if (b.num_cells() <= 0) return false;
    for (int z = b.lo.z; z < b.hi.z; ++z) {
      for (int y = b.lo.y; y < b.hi.y; ++y) {
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          auto& h = hit[static_cast<std::size_t>(
              x + i64(dim_.x) * (y + i64(dim_.y) * z))];
          if (h) return false;
          h = 1;
        }
      }
    }
  }
  return std::all_of(hit.begin(), hit.end(), [](u8 v) { return v == 1; });
}

i64 Decomposition3::max_face_bytes() const {
  i64 best = 0;
  for (const SubDomain& b : blocks_) {
    for (int face = 0; face < 6; ++face) {
      best = std::max(best, face_area(b.node, face) * 5 *
                                static_cast<i64>(sizeof(Real)));
    }
  }
  return best;
}

}  // namespace gc::core
