#include "core/decomposition.hpp"

#include <algorithm>

namespace gc::core {

namespace {
/// Start of block k when splitting `extent` into `parts` near-equal pieces.
int split_start(int extent, int parts, int k) {
  const int base = extent / parts;
  const int rem = extent % parts;
  return k * base + std::min(k, rem);
}
}  // namespace

Decomposition3::Decomposition3(Int3 lattice_dim, netsim::NodeGrid grid)
    : dim_(lattice_dim), grid_(grid) {
  GC_CHECK_MSG(dim_.x >= grid.dims.x && dim_.y >= grid.dims.y &&
                   dim_.z >= grid.dims.z,
               "lattice " << dim_ << " too small for node grid " << grid.dims);
  const int n = grid.num_nodes();
  blocks_.resize(static_cast<std::size_t>(n));
  for (int node = 0; node < n; ++node) {
    const Int3 c = grid.coords(node);
    SubDomain b;
    b.node = node;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] = split_start(dim_[a], grid.dims[a], c[a]);
      b.hi[a] = split_start(dim_[a], grid.dims[a], c[a] + 1);
    }
    blocks_[static_cast<std::size_t>(node)] = b;
  }
}

const SubDomain& Decomposition3::block(int node) const {
  GC_CHECK(node >= 0 && node < num_nodes());
  return blocks_[static_cast<std::size_t>(node)];
}

int Decomposition3::neighbor(int node, Int3 off) const {
  const Int3 c = grid_.coords(node) + off;
  if (!grid_.contains(c)) return -1;
  return grid_.id(c);
}

std::vector<std::pair<int, int>> Decomposition3::axial_neighbors(
    int node) const {
  std::vector<std::pair<int, int>> out;
  for (int face = 0; face < 6; ++face) {
    Int3 off{0, 0, 0};
    off[face / 2] = (face % 2 == 0) ? -1 : +1;
    const int nb = neighbor(node, off);
    if (nb >= 0) out.emplace_back(face, nb);
  }
  return out;
}

i64 Decomposition3::face_area(int node, int face) const {
  Int3 off{0, 0, 0};
  const int axis = face / 2;
  off[axis] = (face % 2 == 0) ? -1 : +1;
  if (neighbor(node, off) < 0) return 0;
  const Int3 s = block(node).size();
  switch (axis) {
    case 0: return i64(s.y) * s.z;
    case 1: return i64(s.x) * s.z;
    default: return i64(s.x) * s.y;
  }
}

bool Decomposition3::tiles_domain() const {
  std::vector<u8> hit(static_cast<std::size_t>(dim_.volume()), 0);
  for (const SubDomain& b : blocks_) {
    if (b.lo.x < 0 || b.lo.y < 0 || b.lo.z < 0 || b.hi.x > dim_.x ||
        b.hi.y > dim_.y || b.hi.z > dim_.z) {
      return false;
    }
    if (b.num_cells() <= 0) return false;
    for (int z = b.lo.z; z < b.hi.z; ++z) {
      for (int y = b.lo.y; y < b.hi.y; ++y) {
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          auto& h = hit[static_cast<std::size_t>(
              x + i64(dim_.x) * (y + i64(dim_.y) * z))];
          if (h) return false;
          h = 1;
        }
      }
    }
  }
  return std::all_of(hit.begin(), hit.end(), [](u8 v) { return v == 1; });
}

i64 Decomposition3::max_face_bytes() const {
  i64 best = 0;
  for (const SubDomain& b : blocks_) {
    for (int face = 0; face < 6; ++face) {
      best = std::max(best, face_area(b.node, face) * 5 *
                                static_cast<i64>(sizeof(Real)));
    }
  }
  return best;
}

}  // namespace gc::core
