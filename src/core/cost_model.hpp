// Calibrated per-node performance profiles (Section 3/4.4). The constants
// derive from the paper's own measurements: a Xeon 2.4 GHz thread steps an
// 80^3 D3Q19 block in ~1420 ms (2.77 us/cell); the FX 5800 Ultra does it
// in 214 ms (418 ns/cell), of which ~120 ms is inner-cell collision that
// can overlap network communication; AGP read-back setup (~10 ms)
// dominates the per-neighbor GPU->CPU transfer.
#pragma once

#include <string>

#include "gpusim/bus.hpp"

namespace gc::core {

struct NodePerfProfile {
  std::string name;
  double cpu_ns_per_cell;   ///< one CPU thread, full LBM step
  double cpu_jitter_coef;   ///< cpu time *= 1 + coef * log2(nodes)
  double gpu_ns_per_cell;   ///< full GPU step (collision+streaming+BC)
  double overlap_fraction;  ///< fraction of the GPU step (inner-cell
                            ///< collision) overlappable with network I/O
  double gather_pass_s;     ///< on-GPU border-gather passes per neighbor
                            ///< (accounted as GPU compute, Section 4.3)
  gpusim::BusSpec bus;

  /// The paper's node: dual Xeon 2.4 GHz (one thread used) + GeForce FX
  /// 5800 Ultra on AGP 8x.
  static NodePerfProfile paper_node();
  /// Section 4.4 enhancement (2): PCI-Express bus.
  static NodePerfProfile pcie_node();
  /// Section 4.4: GeForce 6800 Ultra (">= 2.5x faster").
  static NodePerfProfile gf6800_node();
  /// Section 4.4: CPU with SSE ("about 2 to 3 times faster").
  static NodePerfProfile sse_cpu_node();
};

}  // namespace gc::core
